package milp

import (
	"container/heap"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Status reports the quality of a Solve result.
type Status uint8

const (
	// Optimal means the branch-and-bound proved optimality (within Gap).
	Optimal Status = iota
	// Feasible means an integral incumbent was found but the search stopped
	// early (deadline or node limit) before proving optimality.
	Feasible
	// Infeasible means the instance has no integral solution.
	Infeasible
	// NoSolution means the search stopped early without finding any
	// integral solution (and the instance was not proved infeasible).
	NoSolution
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	default:
		return "no-solution"
	}
}

// Options configures Solve.
type Options struct {
	// Deadline, if nonzero, bounds the wall-clock time; Solve returns the
	// best incumbent found when it expires.
	Deadline time.Time
	// MaxNodes bounds the number of branch-and-bound nodes (default 4096).
	MaxNodes int
	// Gap is the relative optimality gap at which search stops (default 1e-6).
	Gap float64
	// Seed, when non-nil, is a candidate integral assignment (length
	// NumVars) used as the initial incumbent if it is feasible. 3σSched
	// seeds each cycle with the previous cycle's schedule (§4.3.6).
	Seed []float64
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
	// Now, when non-nil, replaces time.Now as the solver's time source for
	// deadline checks and Elapsed measurement. Callers running on virtual
	// time (internal/simulator's VirtualClock) inject a clock that stands
	// still during the solve, so the Deadline can never expire mid-search
	// and budgeted solves become deterministic regardless of host load.
	Now func() time.Time
	// WarmBasis, when non-nil, is a previous optimum's basis (basis[i] =
	// column basic in LP row i, slacks at NumVars+i) used to crash-start the
	// root relaxation. The scheduler carries each cycle's root basis into the
	// next cycle's solve when the model structure is unchanged (DESIGN.md
	// §12). The crash is deterministic and applied identically by whichever
	// worker solves the root LP, so the any-worker-count reproducibility
	// guarantee below is preserved; a stale or mismatched basis degrades to
	// extra simplex pivots, never to an incorrect result.
	WarmBasis []int
	// Workers sets the LP worker-pool size (default GOMAXPROCS). Workers
	// beyond the first speculatively solve the LP relaxations of open
	// nodes; the exploration itself — node order, pruning, incumbent
	// updates, branching — is committed by a single coordinator in the
	// exact order a sequential run would use, so for runs that terminate
	// on the node budget or on proved optimality the returned solution is
	// identical for every worker count (see DESIGN.md "Solver
	// architecture"). Deadline-terminated runs stop at a timing-dependent
	// node and are exempt from that guarantee (with any worker count).
	Workers int
}

// Solution is the result of Solve.
type Solution struct {
	Status     Status
	X          []float64 // length NumVars; binaries are exact 0/1
	Objective  float64
	Nodes      int           // branch-and-bound nodes explored
	LPIters    int           // simplex pivots of consumed node relaxations (deterministic)
	Bound      float64       // best remaining upper bound at stop time
	Elapsed    time.Duration // wall-clock solve time
	Workers    int           // effective worker-pool size
	SpecLPs    int           // node relaxations solved by speculation workers
	SpecUsed   int           // of those, consumed by the coordinator
	RootBasis  []int         // root relaxation's optimal basis (warm-start feed for the next solve)
	WarmPivots int           // crash pivots applied from Options.WarmBasis (0 = cold root solve)
	SeedUsed   bool          // Options.Seed was feasible and installed as the initial incumbent
}

// Value returns X[v], or 0 when no solution is present.
func (s *Solution) Value(v int) float64 {
	if s.X == nil || v >= len(s.X) {
		return 0
	}
	return s.X[v]
}

// LP computation states of a node (atomic).
const (
	lpUnclaimed int32 = iota
	lpInFlight
	lpDone
)

type bbNode struct {
	fixed  []int8  // per-var fixing: -1 free, 0/1 fixed
	bound  float64 // parent LP bound (upper bound on this subtree)
	depth  int
	branch int8 // value this node fixed at its branching variable

	// LP relaxation result, computed once — inline by the coordinator or
	// speculatively by a worker. state transitions lpUnclaimed →
	// lpInFlight (CAS by whoever claims it) → lpDone; done is closed when
	// res/objC/err are published.
	state int32
	done  chan struct{}
	res   lpResult
	objC  float64
	err   error
	spec  bool // solved by a speculation worker

	// Root-only warm-start plumbing: warm is the crash basis hint and
	// wantBasis requests capture of the optimal basis. Kept on the node (not
	// read from Options at solve time) so a speculation worker that claims
	// the root produces bitwise-identical results to the coordinator.
	warm      []int
	wantBasis bool
}

func newBBNode(fixed []int8, bound float64, depth int, branch int8) *bbNode {
	return &bbNode{fixed: fixed, bound: bound, depth: depth, branch: branch, done: make(chan struct{})}
}

// nodeHeap orders nodes depth-first (deepest first, "1" children pushed
// last so they pop first), with the LP bound as tie-break. Depth-first
// diving reaches integral leaves — and therefore incumbents — within a few
// nodes, which is what an anytime scheduler needs from its budgeted solves;
// bound-based pruning still applies.
type nodeHeap []*bbNode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].depth != h[j].depth {
		return h[i].depth > h[j].depth
	}
	//lint:allow floateq exact tie-break: equal-bits bounds fall through to the deterministic branch order
	if h[i].bound != h[j].bound {
		return h[i].bound > h[j].bound
	}
	return h[i].branch > h[j].branch // dive the 1-branch first
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*bbNode)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// bbState is the search state shared between the coordinator and the
// speculation workers.
type bbState struct {
	m  *Model
	mu sync.Mutex
	// cond signals workers when nodes are pushed or the search stops.
	cond    *sync.Cond
	open    nodeHeap // guarded by mu
	incObj  float64  // guarded by mu; workers read for advisory pruning only
	stopped bool     // guarded by mu

	specLPs int64 // atomic
}

// Solve optimizes the model. It never panics on well-formed input; numeric
// trouble degrades to the best incumbent with Status Feasible/NoSolution.
func Solve(m *Model, opts Options) Solution {
	if opts.Now == nil {
		//lint:allow wallclock default time source for standalone solves; deterministic callers inject a virtual clock via Options.Now
		opts.Now = time.Now
	}
	start := opts.Now()
	sol := Solution{Status: NoSolution, Bound: math.Inf(1)}
	n := m.NumVars()
	if n == 0 {
		sol.Status = Optimal
		sol.Objective = m.objConst
		sol.X = nil
		sol.Elapsed = opts.Now().Sub(start)
		return sol
	}
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 4096
	}
	if opts.Gap <= 0 {
		opts.Gap = 1e-6
	}
	if opts.IntTol <= 0 {
		opts.IntTol = 1e-6
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	sol.Workers = opts.Workers

	var incumbent []float64
	incObj := math.Inf(-1)
	if opts.Seed != nil && m.Feasible(opts.Seed, feasTol) {
		incumbent = append([]float64(nil), opts.Seed...)
		incObj = m.Objective(incumbent)
		sol.SeedUsed = true
	}
	// updateIncumbent applies the deterministic acceptance rule: strictly
	// better objectives always win; objective ties (within 1e-12) go to the
	// lexicographically smallest solution vector, so the final incumbent
	// does not depend on the order in which equal-quality leaves were
	// discovered.
	updateIncumbent := func(st *bbState, x []float64, obj float64) {
		better := obj > incObj+1e-12
		tie := !better && incumbent != nil && obj >= incObj-1e-12 && lexLess(x, incumbent)
		if !better && !tie {
			return
		}
		if obj > incObj {
			incObj = obj
		}
		incumbent = append(incumbent[:0:0], x...)
		st.mu.Lock()
		st.incObj = incObj
		st.mu.Unlock()
	}

	deadline := func() bool {
		return !opts.Deadline.IsZero() && opts.Now().After(opts.Deadline)
	}

	st := &bbState{m: m, incObj: incObj}
	st.cond = sync.NewCond(&st.mu)
	rootFixed := make([]int8, n)
	for i := range rootFixed {
		rootFixed[i] = -1
	}
	root := newBBNode(rootFixed, math.Inf(1), 0, 0)
	root.warm = opts.WarmBasis
	root.wantBasis = true
	st.open = nodeHeap{root}
	heap.Init(&st.open)
	greedy := newGreedyCtx(m)

	// Speculation workers: each repeatedly claims the most promising
	// unclaimed open node and solves its LP relaxation ahead of the
	// coordinator. They influence only wall-clock time, never the result.
	var wg sync.WaitGroup
	for w := 1; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st.speculate()
		}()
	}
	stopWorkers := func() {
		st.mu.Lock()
		st.stopped = true
		st.mu.Unlock()
		st.cond.Broadcast()
		wg.Wait()
	}

	provedOpt := false
	var pending *bbNode // popped but not yet expanded when the search stops
	gapTerm := func() float64 { return incObj + opts.Gap*math.Max(1, math.Abs(incObj)) }

	for {
		st.mu.Lock()
		if st.open.Len() == 0 {
			st.mu.Unlock()
			provedOpt = true
			break
		}
		if sol.Nodes >= opts.MaxNodes {
			st.mu.Unlock()
			break
		}
		node := heap.Pop(&st.open).(*bbNode)
		st.mu.Unlock()
		if deadline() {
			// Popped but not expanded: remember it so its bound still
			// counts toward sol.Bound (a drained heap must not make a
			// budget-truncated solve look proved-optimal).
			pending = node
			break
		}
		if node.bound <= gapTerm() {
			// This subtree cannot beat the incumbent. Under the depth-first
			// ordering the popped node is not necessarily the best-bound
			// node, so this prunes rather than proves optimality.
			continue
		}
		sol.Nodes++
		ensureLP(m, node)
		sol.LPIters += node.res.iters
		if node.spec {
			sol.SpecUsed++
		}
		if node.wantBasis && node.err == nil {
			sol.RootBasis = node.res.basis
			sol.WarmPivots = node.res.warmed
		}
		if node.err != nil {
			continue // infeasible or numerically dead subtree: prune
		}
		lpObj := node.res.obj + node.objC
		if lpObj <= gapTerm() {
			continue
		}
		// Patch fixed values into the relaxation solution.
		x := append([]float64(nil), node.res.x...)
		for v, val := range node.fixed {
			if val >= 0 {
				x[v] = float64(val)
			}
		}
		frac := mostFractionalBinary(m, x, opts.IntTol)
		if frac < 0 {
			// Integral: snap binaries and update incumbent. Snapping a
			// binary up from 1−ε can violate a tight row (e.g. an
			// exact-shares link row) by more than the feasibility
			// tolerance; in that case re-solve the continuous variables
			// with the binaries fixed at their snapped values.
			for v, k := range m.kinds {
				if k == Binary {
					x[v] = math.Round(x[v])
				}
			}
			if obj := m.Objective(x); m.Feasible(x, feasTol) {
				updateIncumbent(st, x, obj)
			} else if rx, ok := roundFixAndSolve(m, x); ok {
				updateIncumbent(st, rx, m.Objective(rx))
			}
			continue
		}
		// Rounding heuristics to tighten the incumbent cheaply: greedy
		// selection for all-binary models, fix-and-solve for mixed models
		// (round every binary to its nearest integer, then let one more LP
		// set the continuous variables).
		if rx, ok := roundGreedy(m, x, node.fixed, greedy); ok {
			updateIncumbent(st, rx, m.Objective(rx))
		} else if rx, ok := roundFixAndSolve(m, x); ok {
			updateIncumbent(st, rx, m.Objective(rx))
		}
		st.mu.Lock()
		for _, val := range []int8{0, 1} {
			fixed := make([]int8, n)
			copy(fixed, node.fixed)
			fixed[frac] = val
			heap.Push(&st.open, newBBNode(fixed, lpObj, node.depth+1, val))
		}
		st.mu.Unlock()
		st.cond.Broadcast()
	}
	stopWorkers()
	sol.SpecLPs = int(atomic.LoadInt64(&st.specLPs))

	sol.Elapsed = opts.Now().Sub(start)
	if incumbent == nil {
		if provedOpt {
			sol.Status = Infeasible
		}
		return sol
	}
	sol.X = incumbent
	sol.Objective = incObj
	if provedOpt {
		sol.Status = Optimal
		sol.Bound = incObj
	} else {
		sol.Status = Feasible
		best := incObj
		for _, nd := range st.open {
			if nd.bound > best {
				best = nd.bound
			}
		}
		if pending != nil && pending.bound > best {
			best = pending.bound
		}
		sol.Bound = best
	}
	return sol
}

// ensureLP produces node's LP relaxation result: the caller solves it inline
// if no worker has claimed the node, otherwise it waits for the in-flight
// speculative solve. Either way node.res/objC/err are valid on return.
func ensureLP(m *Model, node *bbNode) {
	if atomic.CompareAndSwapInt32(&node.state, lpUnclaimed, lpInFlight) {
		node.res, node.objC, node.err = solveRelaxationOpt(m, node.fixed, node.warm, node.wantBasis)
		atomic.StoreInt32(&node.state, lpDone)
		close(node.done)
		return
	}
	<-node.done
}

// speculate is the worker loop: claim the most promising unclaimed open
// node, solve its relaxation, publish, repeat. Claims skip nodes already
// dominated by the shared incumbent — an advisory read that saves work but
// cannot change what the coordinator commits.
func (st *bbState) speculate() {
	for {
		st.mu.Lock()
		var node *bbNode
		for {
			if st.stopped {
				st.mu.Unlock()
				return
			}
			node = st.claimLocked()
			if node != nil {
				break
			}
			st.cond.Wait()
		}
		st.mu.Unlock()
		node.spec = true
		node.res, node.objC, node.err = solveRelaxationOpt(st.m, node.fixed, node.warm, node.wantBasis)
		atomic.AddInt64(&st.specLPs, 1)
		atomic.StoreInt32(&node.state, lpDone)
		close(node.done)
	}
}

// claimLocked picks the unclaimed open node the coordinator is most likely
// to pop next (heap order) and marks it in-flight. Caller holds st.mu.
func (st *bbState) claimLocked() *bbNode {
	var best *bbNode
	var bestAt int
	for i, nd := range st.open {
		if atomic.LoadInt32(&nd.state) != lpUnclaimed {
			continue
		}
		if nd.bound <= st.incObj { // advisory: will be pruned anyway
			continue
		}
		if best == nil || st.open.Less(i, bestAt) {
			best, bestAt = nd, i
		}
	}
	if best != nil && atomic.CompareAndSwapInt32(&best.state, lpUnclaimed, lpInFlight) {
		return best
	}
	return nil
}

// lexLess reports whether a is lexicographically smaller than b (the
// deterministic incumbent tie-break).
func lexLess(a, b []float64) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		//lint:allow floateq bitwise lexicographic order is the point: the incumbent tie-break must be exact to be deterministic
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// lpSizeSparseCutoff is the tableau footprint (rows × columns) above which
// solveRelaxation switches from the dense tableau to the sparse-row simplex.
// Below it the dense path's contiguous arrays win on constant factors.
const lpSizeSparseCutoff = 8192

// lpForce overrides the dense/sparse choice in tests and microbenchmarks:
// 0 = auto, 1 = always dense, 2 = always sparse.
var lpForce int32

// LP-representation override modes for DebugForceLP.
const (
	LPAuto   int32 = 0
	LPDense  int32 = 1
	LPSparse int32 = 2
)

// DebugForceLP overrides the dense/sparse LP-representation choice for every
// subsequent relaxation solve and returns the previous mode. It exists for
// the differential solver oracle (internal/check), which cross-checks the
// hybrid auto-selected path against a forced dense reference; restore the
// returned mode when done. Not for production use.
func DebugForceLP(mode int32) int32 { return atomic.SwapInt32(&lpForce, mode) }

// useSparseLP decides the representation for one relaxation: sparse when the
// tableau is big and the structural matrix thin (scheduler instances: every
// indicator sits in one demand row plus a few capacity rows), dense
// otherwise.
func useSparseLP(n int, rows []Row) bool {
	switch atomic.LoadInt32(&lpForce) {
	case 1:
		return false
	case 2:
		return true
	}
	m := len(rows)
	if m == 0 || n == 0 || m*(n+m) < lpSizeSparseCutoff {
		return false
	}
	nnz := 0
	for _, r := range rows {
		nnz += len(r.Idx)
	}
	return nnz*3 <= m*n
}

// solveRelaxation builds and solves the LP relaxation of m with the given
// variables fixed (substituted out). fixed is indexed by variable: -1 free,
// 0/1 fixed; it must have length NumVars. Returns the LP result plus the
// objective constant contributed by fixed variables and the model constant.
// It is safe for concurrent use: every call draws its working memory from a
// pooled arena, so parallel speculation workers never share LP state.
func solveRelaxation(m *Model, fixed []int8) (lpResult, float64, error) {
	return solveRelaxationOpt(m, fixed, nil, false)
}

// solveRelaxationOpt is solveRelaxation with root-LP warm-start plumbing:
// warm, when non-nil, crash-starts the simplex from a previous optimum's
// basis (this forces the dense representation, whose pivot sequence the
// sparse path reproduces bitwise anyway, so the choice cannot change the
// result); wantBasis captures the optimal basis into the lpResult.
func solveRelaxationOpt(m *Model, fixed []int8, warm []int, wantBasis bool) (lpResult, float64, error) {
	n := m.NumVars()
	ar := lpArenaPool.Get().(*lpArena)
	defer lpArenaPool.Put(ar)
	c := f64(&ar.c, n)
	copy(c, m.obj)
	objConst := m.objConst
	for v, val := range fixed {
		if val < 0 {
			continue
		}
		if val == 1 {
			objConst += c[v]
		}
		c[v] = 0
	}
	// Substitute the fixings out of every row, packing the surviving entries
	// into one arena-backed span per row.
	nnz := 0
	for _, r := range m.rows {
		nnz += len(r.Idx)
	}
	idxBk := ints(&ar.idx, nnz)
	coefBk := f64(&ar.coef, nnz)
	if cap(ar.rows) < len(m.rows) {
		ar.rows = make([]Row, 0, len(m.rows))
	}
	rows := ar.rows[:0]
	off := 0
	for _, r := range m.rows {
		start := off
		rhs := r.RHS
		for k, id := range r.Idx {
			if val := fixed[id]; val >= 0 {
				if val == 1 {
					rhs -= r.Coef[k]
				}
				continue
			}
			idxBk[off], coefBk[off] = id, r.Coef[k]
			off++
		}
		if off == start {
			if rhs < -feasTol {
				ar.rows = rows
				return lpResult{}, 0, ErrInfeasible
			}
			continue // trivially satisfied row: prune
		}
		rows = append(rows, Row{Name: r.Name, RHS: rhs,
			Idx: idxBk[start:off:off], Coef: coefBk[start:off:off]})
	}
	ar.rows = rows
	if warm == nil && useSparseLP(n, rows) {
		sp := newSparseLPWith(c, rows, ar)
		sp.wantBasis = wantBasis
		res, err := sp.solve(0)
		return res, objConst, err
	}
	dl := newDenseLPWith(c, rows, ar)
	dl.warm = warm
	dl.wantBasis = wantBasis
	res, err := dl.solve(0)
	return res, objConst, err
}

// mostFractionalBinary returns the binary variable whose value is farthest
// from integral (>tol), or -1 when all binaries are integral.
func mostFractionalBinary(m *Model, x []float64, tol float64) int {
	best, bestD := -1, tol
	for v, k := range m.kinds {
		if k != Binary {
			continue
		}
		f := x[v] - math.Floor(x[v])
		d := math.Min(f, 1-f)
		if d > bestD {
			best, bestD = v, d
		}
	}
	return best
}

// roundFixAndSolve rounds every binary to its nearest integer value and
// solves the remaining LP over the continuous variables. Used for mixed
// models (e.g. the exact-shares scheduling formulation), where greedy
// row-checking cannot assign the continuous allocation variables.
func roundFixAndSolve(m *Model, x []float64) ([]float64, bool) {
	fixed := make([]int8, len(m.kinds))
	nBin := 0
	for v, k := range m.kinds {
		if k != Binary {
			fixed[v] = -1
			continue
		}
		nBin++
		if x[v] >= 0.5 {
			fixed[v] = 1
		} else {
			fixed[v] = 0
		}
	}
	if nBin == 0 || nBin == len(m.kinds) {
		return nil, false // pure-continuous or pure-binary: other paths apply
	}
	res, _, err := solveRelaxation(m, fixed)
	if err != nil {
		return nil, false
	}
	out := res.x
	for v, val := range fixed {
		if val >= 0 {
			out[v] = float64(val)
		}
	}
	if !m.Feasible(out, feasTol) {
		return nil, false
	}
	return out, true
}

// greedyCtx holds the model-wide structures roundGreedy needs — the
// column-to-rows index and per-call scratch — built once per Solve instead of
// once per node.
type greedyCtx struct {
	allBinary bool
	colRows   [][]greedyEntry
	activity  []float64
	cands     []greedyCand
}

type greedyEntry struct {
	row  int
	coef float64
}

type greedyCand struct {
	v   int
	val float64
}

func newGreedyCtx(m *Model) *greedyCtx {
	g := &greedyCtx{allBinary: true}
	for _, k := range m.kinds {
		if k != Binary {
			g.allBinary = false
			return g
		}
	}
	g.colRows = make([][]greedyEntry, m.NumVars())
	for ri, r := range m.rows {
		for k, id := range r.Idx {
			g.colRows[id] = append(g.colRows[id], greedyEntry{ri, r.Coef[k]})
		}
	}
	g.activity = make([]float64, len(m.rows))
	return g
}

// roundGreedy builds an integral solution from an LP point for all-binary
// models: binaries are considered in decreasing LP value and switched on
// whenever doing so keeps every row feasible. Returns ok=false for models
// with continuous variables. Not safe for concurrent use (shared g scratch);
// only the coordinator calls it.
func roundGreedy(m *Model, x []float64, fixed []int8, g *greedyCtx) ([]float64, bool) {
	if !g.allBinary {
		return nil, false
	}
	n := m.NumVars()
	cands := g.cands[:0]
	out := make([]float64, n)
	activity := g.activity
	for i := range activity {
		activity[i] = 0
	}
	apply := func(v int) bool {
		for _, e := range g.colRows[v] {
			if activity[e.row]+e.coef > m.rows[e.row].RHS+feasTol {
				return false
			}
		}
		for _, e := range g.colRows[v] {
			activity[e.row] += e.coef
		}
		out[v] = 1
		return true
	}
	// Honor fixings first; a forced x=1 that is infeasible kills the heuristic.
	for v, val := range fixed {
		if val == 1 {
			if !apply(v) {
				return nil, false
			}
		}
	}
	for v := 0; v < n; v++ {
		if fixed[v] >= 0 {
			continue
		}
		cands = append(cands, greedyCand{v, x[v]})
	}
	defer func() { g.cands = cands }()
	// Sort by LP value desc, tie-break on objective coefficient desc.
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if math.Abs(a.val-b.val) > 1e-12 {
			return a.val > b.val
		}
		return m.obj[a.v] > m.obj[b.v]
	})
	// Relaxing variables (negative objective, e.g. preemption indicators)
	// that the LP chose enable placements that would otherwise violate
	// capacity; apply them first when the LP leaned on them.
	for _, cd := range cands {
		if m.obj[cd.v] < 0 && cd.val >= 0.5 {
			apply(cd.v)
		}
	}
	for _, cd := range cands {
		if cd.val < 1e-9 {
			break
		}
		if m.obj[cd.v] <= 0 {
			continue
		}
		apply(cd.v)
	}
	if !m.Feasible(out, feasTol) {
		return nil, false
	}
	return out, true
}

// DebugSolveRoot solves the bare LP relaxation and surfaces the raw solver
// error (for diagnosing model pathologies from other packages' tests).
func DebugSolveRoot(m *Model) ([]float64, float64, error) {
	free := make([]int8, m.NumVars())
	for i := range free {
		free[i] = -1
	}
	res, oc, err := solveRelaxation(m, free)
	return res.x, res.obj + oc, err
}
