package milp

import (
	"math/rand"
	"testing"
	"time"
)

// TestSolveParallelDeterministic is the workers=1 vs workers=N contract: on
// 50 randomized scheduler-shaped models, runs terminated by node budget or
// proved optimality return the same objective AND the same chosen
// assignments (the coordinator commits exploration in sequential order; the
// lexicographic incumbent tie-break pins equal-objective choices).
func TestSolveParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9001))
	for trial := 0; trial < 50; trial++ {
		m := randPacking(rng, 3+rng.Intn(8), 2+rng.Intn(4), 2+rng.Intn(7))
		budget := 16 + rng.Intn(240)
		seq := Solve(m, Options{MaxNodes: budget, Workers: 1})
		par := Solve(m, Options{MaxNodes: budget, Workers: 8})
		if seq.Status != par.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, seq.Status, par.Status)
		}
		if seq.Objective != par.Objective {
			t.Fatalf("trial %d: objective %v (w=1) vs %v (w=8)", trial, seq.Objective, par.Objective)
		}
		if seq.Nodes != par.Nodes || seq.LPIters != par.LPIters {
			t.Fatalf("trial %d: nodes/iters %d/%d vs %d/%d",
				trial, seq.Nodes, seq.LPIters, par.Nodes, par.LPIters)
		}
		if (seq.X == nil) != (par.X == nil) {
			t.Fatalf("trial %d: one run found a solution, the other did not", trial)
		}
		for v := range seq.X {
			if seq.X[v] != par.X[v] {
				t.Fatalf("trial %d: assignment differs at var %d: %v vs %v",
					trial, v, seq.X[v], par.X[v])
			}
		}
		if seq.Bound != par.Bound {
			t.Fatalf("trial %d: bound %v vs %v", trial, seq.Bound, par.Bound)
		}
	}
}

// TestSolveParallelMixedModels covers determinism for mixed binary +
// continuous (exact-shares-shaped) models.
func TestSolveParallelMixedModels(t *testing.T) {
	rng := rand.New(rand.NewSource(9002))
	for trial := 0; trial < 15; trial++ {
		var m Model
		groups := 2 + rng.Intn(4)
		parts := 2 + rng.Intn(3)
		for g := 0; g < groups; g++ {
			I := m.AddVar(Binary, 1+rng.Float64()*9, "I")
			m.AddLE("demand", []int{I}, []float64{1}, 1)
			need := 1 + rng.Float64()*3
			idx := []int{I}
			coef := []float64{need}
			for p := 0; p < parts; p++ {
				a := m.AddVar(Continuous, 0, "a")
				idx = append(idx, a)
				coef = append(coef, -1)
				m.AddLE("cap", []int{a}, []float64{1}, 0.5+rng.Float64()*2)
			}
			m.AddLE("link", idx, coef, 0)
		}
		seq := Solve(&m, Options{MaxNodes: 128, Workers: 1})
		par := Solve(&m, Options{MaxNodes: 128, Workers: 6})
		if seq.Status != par.Status || seq.Objective != par.Objective || seq.Nodes != par.Nodes {
			t.Fatalf("trial %d: %v/%v/%d vs %v/%v/%d", trial,
				seq.Status, seq.Objective, seq.Nodes, par.Status, par.Objective, par.Nodes)
		}
		for v := range seq.X {
			if seq.X[v] != par.X[v] {
				t.Fatalf("trial %d: X[%d] %v vs %v", trial, v, seq.X[v], par.X[v])
			}
		}
	}
}

// TestSolveWorkersDefault checks the GOMAXPROCS default and that the worker
// count is surfaced in the solution counters.
func TestSolveWorkersDefault(t *testing.T) {
	var m Model
	a := m.AddVar(Binary, 2, "a")
	m.AddLE("ub", []int{a}, []float64{1}, 1)
	sol := Solve(&m, Options{})
	if sol.Workers < 1 {
		t.Fatalf("Workers = %d, want >= 1", sol.Workers)
	}
	sol = Solve(&m, Options{Workers: 3})
	if sol.Workers != 3 {
		t.Fatalf("Workers = %d, want 3", sol.Workers)
	}
}

// TestSolveBoundIncludesPendingNodeAtDeadline reproduces the timeout audit:
// when the deadline expires right after a node is popped (here: an
// already-expired deadline with a seeded incumbent), the reported Bound must
// still dominate that popped-but-unexpanded node's subtree — it must not
// collapse to the incumbent objective just because the heap drained.
func TestSolveBoundIncludesPendingNodeAtDeadline(t *testing.T) {
	var m Model
	a := m.AddVar(Binary, 5, "a")
	b := m.AddVar(Binary, 4, "b")
	m.AddLE("d", []int{a, b}, []float64{1, 1}, 1)
	seed := []float64{0, 1} // feasible, objective 4; optimum is 5
	sol := Solve(&m, Options{Seed: seed, Deadline: time.Now().Add(-time.Second), Workers: 1})
	if sol.Status != Feasible {
		t.Fatalf("status = %v, want feasible (budget-truncated)", sol.Status)
	}
	if sol.Objective != 4 {
		t.Fatalf("objective = %v, want seed's 4", sol.Objective)
	}
	// The root node was popped but never expanded; its (infinite) parent
	// bound must flow into Bound rather than being dropped with the
	// drained heap.
	if sol.Bound < 5 {
		t.Fatalf("Bound = %v: pending node's bound was dropped at expiry", sol.Bound)
	}
}

// TestSolveSpecCountersConsistent sanity-checks the speculation counters:
// used results never exceed solved ones, and a single-worker run performs no
// speculation at all.
func TestSolveSpecCountersConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(9003))
	m := randPacking(rng, 6, 3, 5)
	seq := Solve(m, Options{MaxNodes: 128, Workers: 1})
	if seq.SpecLPs != 0 || seq.SpecUsed != 0 {
		t.Fatalf("sequential run speculated: %d/%d", seq.SpecLPs, seq.SpecUsed)
	}
	par := Solve(m, Options{MaxNodes: 128, Workers: 8})
	if par.SpecUsed > par.SpecLPs {
		t.Fatalf("SpecUsed %d > SpecLPs %d", par.SpecUsed, par.SpecLPs)
	}
	if par.SpecUsed > par.Nodes {
		t.Fatalf("SpecUsed %d > Nodes %d", par.SpecUsed, par.Nodes)
	}
}
