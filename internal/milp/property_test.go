package milp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// randPacking builds a random scheduling-shaped packing instance: binaries
// with positive utilities, "at most one per group" rows, and capacity rows.
func randPacking(rng *rand.Rand, groups, perGroup, capRows int) *Model {
	var m Model
	for g := 0; g < groups; g++ {
		idx := make([]int, perGroup)
		coef := make([]float64, perGroup)
		for o := 0; o < perGroup; o++ {
			idx[o] = m.AddVar(Binary, 0.5+rng.Float64()*9.5, "I")
			coef[o] = 1
		}
		m.AddLE("demand", idx, coef, 1)
	}
	for c := 0; c < capRows; c++ {
		var idx []int
		var coef []float64
		for v := 0; v < m.NumVars(); v++ {
			if rng.Float64() < 0.4 {
				idx = append(idx, v)
				coef = append(coef, 0.5+rng.Float64()*3.5)
			}
		}
		if len(idx) > 0 {
			m.AddLE("cap", idx, coef, 2+rng.Float64()*8)
		}
	}
	return &m
}

// TestPropertySolutionsAlwaysFeasible: whatever the budget, any returned
// solution satisfies every constraint and integrality.
func TestPropertySolutionsAlwaysFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 40; trial++ {
		m := randPacking(rng, 2+rng.Intn(6), 1+rng.Intn(4), 1+rng.Intn(6))
		sol := Solve(m, Options{MaxNodes: 1 + rng.Intn(50)})
		if sol.X == nil {
			continue // budget too small to find anything: allowed
		}
		if !m.Feasible(sol.X, 1e-6) {
			t.Fatalf("trial %d: infeasible solution returned: %v", trial, sol.X)
		}
		if got := m.Objective(sol.X); math.Abs(got-sol.Objective) > 1e-6 {
			t.Fatalf("trial %d: objective mismatch %v vs %v", trial, got, sol.Objective)
		}
	}
}

// TestPropertyBoundDominatesIncumbent: the reported bound is always an
// upper bound on the incumbent objective.
func TestPropertyBoundDominatesIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 30; trial++ {
		m := randPacking(rng, 3+rng.Intn(5), 2, 2+rng.Intn(4))
		sol := Solve(m, Options{MaxNodes: 5})
		if sol.X != nil && sol.Bound < sol.Objective-1e-6 {
			t.Fatalf("trial %d: bound %v below incumbent %v", trial, sol.Bound, sol.Objective)
		}
	}
}

// TestPropertyDeterministicWithoutDeadline: with only node limits, the
// solver is deterministic for a fixed instance.
func TestPropertyDeterministicWithoutDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	m := randPacking(rng, 6, 3, 5)
	a := Solve(m, Options{MaxNodes: 64})
	b := Solve(m, Options{MaxNodes: 64})
	if a.Objective != b.Objective || a.Nodes != b.Nodes {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d", a.Objective, a.Nodes, b.Objective, b.Nodes)
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatal("solution vectors differ")
		}
	}
}

// TestPropertyMoreBudgetNeverWorse: increasing the node budget never
// decreases the incumbent objective (same instance, warm logic aside).
func TestPropertyMoreBudgetNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 15; trial++ {
		m := randPacking(rng, 4+rng.Intn(4), 2, 3)
		small := Solve(m, Options{MaxNodes: 2})
		big := Solve(m, Options{MaxNodes: 256})
		if small.X != nil && big.X != nil && big.Objective < small.Objective-1e-9 {
			t.Fatalf("trial %d: more budget got worse: %v -> %v", trial, small.Objective, big.Objective)
		}
	}
}

// TestPropertyLPOptimumDominatesRandomFeasiblePoints uses quick.Check to
// confirm LP optimality against randomly sampled feasible points.
func TestPropertyLPOptimumDominatesRandomFeasiblePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	var m Model
	n := 6
	for v := 0; v < n; v++ {
		m.AddVar(Continuous, 1+rng.Float64()*5, "x")
	}
	for r := 0; r < 4; r++ {
		var idx []int
		var coef []float64
		for v := 0; v < n; v++ {
			idx = append(idx, v)
			coef = append(coef, 0.2+rng.Float64()*2)
		}
		m.AddLE("c", idx, coef, 5+rng.Float64()*5)
	}
	sol := Solve(&m, Options{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	err := quick.Check(func(raw [6]float64) bool {
		x := make([]float64, n)
		for i, v := range raw {
			x[i] = math.Abs(math.Mod(v, 4))
		}
		if !m.Feasible(x, 1e-9) {
			return true // only feasible points must be dominated
		}
		return m.Objective(x) <= sol.Objective+1e-6
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

// TestSeedRespectedUnderBudget: with a zero budget the seed is returned
// verbatim whenever feasible.
func TestSeedRespectedUnderBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 20; trial++ {
		m := randPacking(rng, 4, 2, 3)
		// Construct a feasible seed greedily.
		seed := make([]float64, m.NumVars())
		for v := 0; v < m.NumVars(); v++ {
			seed[v] = 1
			if !m.Feasible(seed, 1e-9) {
				seed[v] = 0
			}
		}
		sol := Solve(m, Options{Deadline: time.Now().Add(-time.Minute), Seed: seed})
		if sol.X == nil {
			t.Fatalf("trial %d: feasible seed dropped", trial)
		}
		if sol.Objective < m.Objective(seed)-1e-9 {
			t.Fatalf("trial %d: result worse than seed", trial)
		}
	}
}
