package milp

import "sync"

// lpArena is the reusable scratch memory for one LP relaxation solve: the
// substituted objective and rows, the tableau backing, and the simplex work
// vectors. Branch-and-bound solves thousands of structurally-similar
// relaxations per cycle; without pooling, allocator and GC time dominate
// the solver profile (the seed profile spent ~40% of Fig-1 wall time in
// mallocgc/growslice). Arenas are pooled per solveRelaxation call, so the
// coordinator and every speculation worker hold distinct arenas.
type lpArena struct {
	c    []float64 // substituted objective
	rows []Row     // substituted row headers
	idx  []int     // backing for all substituted rows' Idx
	coef []float64 // backing for all substituted rows' Coef

	tab    []float64   // dense tableau backing (m × (cols+1)), zeroed on use
	tabHdr [][]float64 // dense tableau row headers
	zrow   []float64
	basis  []int
	cost   []float64
	p1     []float64 // phase-1 objective
	w      []float64 // Devex reference weights

	// Warm-restore revert snapshot (tableau + basis before forced pivots).
	save      []float64
	saveBasis []int

	spRows []spRow   // sparse row headers
	spIdx  []int32   // sparse entry backing
	spVal  []float64 // sparse value backing
	spDn   []float64 // densified-row backing (segments zeroed on grab)
	srtIdx []int32   // per-row sort scratch
	srtVal []float64
}

var lpArenaPool = sync.Pool{New: func() interface{} { return &lpArena{} }}

// f64 returns a length-n float slice from buf, growing it as needed. The
// contents are unspecified; callers must overwrite (or request zeroing via
// f64z) before reading.
func f64(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}

// f64z returns a length-n zeroed float slice from buf.
func f64z(buf *[]float64, n int) []float64 {
	s := f64(buf, n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// ints returns a length-n int slice from buf (contents unspecified).
func ints(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	return (*buf)[:n]
}

// i32s returns a length-n int32 slice from buf (contents unspecified).
func i32s(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	return (*buf)[:n]
}
