package milp

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

// forceLP runs f with the dense/sparse choice pinned, restoring auto mode.
func forceLP(mode int32, f func()) {
	atomic.StoreInt32(&lpForce, mode)
	defer atomic.StoreInt32(&lpForce, 0)
	f()
}

// relaxationRows rebuilds the substituted-LP inputs the way solveRelaxation
// does, so tests can instantiate both LP implementations on identical data.
func relaxationRows(m *Model) ([]float64, []Row) {
	c := append([]float64(nil), m.obj...)
	rows := append([]Row(nil), m.rows...)
	return c, rows
}

// TestSparseDensePivotsIdentical asserts the sparse simplex performs exactly
// the pivot sequence of the dense simplex on scheduler-shaped instances —
// the equivalence contract that lets solveRelaxation switch representations
// by size without changing any solve result.
func TestSparseDensePivotsIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7101))
	for trial := 0; trial < 60; trial++ {
		m := randPacking(rng, 2+rng.Intn(8), 1+rng.Intn(5), 1+rng.Intn(8))
		c, rows := relaxationRows(m)

		var dTrace, sTrace []pivotRec
		dlp := newDenseLP(c, rows)
		dlp.trace = &dTrace
		dres, derr := dlp.solve(0)

		slp := newSparseLP(c, rows)
		slp.trace = &sTrace
		sres, serr := slp.solve(0)

		if (derr == nil) != (serr == nil) || (derr != nil && derr != serr) {
			t.Fatalf("trial %d: error mismatch dense=%v sparse=%v", trial, derr, serr)
		}
		if len(dTrace) != len(sTrace) {
			t.Fatalf("trial %d: pivot count %d vs %d", trial, len(dTrace), len(sTrace))
		}
		for i := range dTrace {
			if dTrace[i] != sTrace[i] {
				t.Fatalf("trial %d pivot %d: dense (e=%d,l=%d) sparse (e=%d,l=%d)",
					trial, i, dTrace[i].enter, dTrace[i].leave, sTrace[i].enter, sTrace[i].leave)
			}
		}
		if derr != nil {
			continue
		}
		if dres.obj != sres.obj || dres.iters != sres.iters {
			t.Fatalf("trial %d: obj/iters %v/%d vs %v/%d", trial, dres.obj, dres.iters, sres.obj, sres.iters)
		}
		for v := range dres.x {
			if dres.x[v] != sres.x[v] {
				t.Fatalf("trial %d: x[%d] = %v vs %v", trial, v, dres.x[v], sres.x[v])
			}
		}
	}
}

// TestSparseDensePivotsIdenticalNegativeRHS covers the phase-1 path
// (artificials, surplus columns, purge) with >= rows from negative RHS.
func TestSparseDensePivotsIdenticalNegativeRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(7102))
	for trial := 0; trial < 40; trial++ {
		var m Model
		n := 3 + rng.Intn(6)
		for v := 0; v < n; v++ {
			m.AddVar(Continuous, rng.Float64()*5-1, "x")
		}
		for r := 0; r < 2+rng.Intn(5); r++ {
			var idx []int
			var coef []float64
			for v := 0; v < n; v++ {
				if rng.Float64() < 0.6 {
					idx = append(idx, v)
					coef = append(coef, rng.Float64()*4-1)
				}
			}
			if len(idx) == 0 {
				continue
			}
			m.AddLE("r", idx, coef, rng.Float64()*10-3) // some RHS negative
		}
		c, rows := relaxationRows(&m)
		var dTrace, sTrace []pivotRec
		dlp := newDenseLP(c, rows)
		dlp.trace = &dTrace
		dres, derr := dlp.solve(0)
		slp := newSparseLP(c, rows)
		slp.trace = &sTrace
		sres, serr := slp.solve(0)
		if (derr == nil) != (serr == nil) || (derr != nil && derr != serr) {
			t.Fatalf("trial %d: error mismatch dense=%v sparse=%v", trial, derr, serr)
		}
		if len(dTrace) != len(sTrace) {
			t.Fatalf("trial %d: pivot count %d vs %d", trial, len(dTrace), len(sTrace))
		}
		for i := range dTrace {
			if dTrace[i] != sTrace[i] {
				t.Fatalf("trial %d pivot %d differs", trial, i)
			}
		}
		if derr == nil && dres.obj != sres.obj {
			t.Fatalf("trial %d: obj %v vs %v", trial, dres.obj, sres.obj)
		}
	}
}

// TestSparseSolveMatchesDenseSolve runs the full branch-and-bound with each
// representation forced and asserts identical solutions.
func TestSparseSolveMatchesDenseSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7103))
	for trial := 0; trial < 25; trial++ {
		m := randPacking(rng, 3+rng.Intn(6), 2+rng.Intn(3), 2+rng.Intn(6))
		var dense, sparse Solution
		forceLP(1, func() { dense = Solve(m, Options{MaxNodes: 256, Workers: 1}) })
		forceLP(2, func() { sparse = Solve(m, Options{MaxNodes: 256, Workers: 1}) })
		if dense.Status != sparse.Status || dense.Objective != sparse.Objective ||
			dense.Nodes != sparse.Nodes || dense.LPIters != sparse.LPIters {
			t.Fatalf("trial %d: dense %v obj=%v nodes=%d iters=%d vs sparse %v obj=%v nodes=%d iters=%d",
				trial, dense.Status, dense.Objective, dense.Nodes, dense.LPIters,
				sparse.Status, sparse.Objective, sparse.Nodes, sparse.LPIters)
		}
		for v := range dense.X {
			if dense.X[v] != sparse.X[v] {
				t.Fatalf("trial %d: X[%d] = %v vs %v", trial, v, dense.X[v], sparse.X[v])
			}
		}
	}
}

// TestSparseMixedModelWithContinuous covers the exact-shares shape: binaries
// linked to continuous allocation variables.
func TestSparseMixedModelWithContinuous(t *testing.T) {
	var m Model
	I := m.AddVar(Binary, 10, "I")
	a0 := m.AddVar(Continuous, 0, "a0")
	a1 := m.AddVar(Continuous, 0, "a1")
	m.AddLE("demand", []int{I}, []float64{1}, 1)
	m.AddLE("link", []int{I, a0, a1}, []float64{3, -1, -1}, 0)
	m.AddLE("cap0", []int{a0}, []float64{1}, 2)
	m.AddLE("cap1", []int{a1}, []float64{1}, 2)
	var dense, sparse Solution
	forceLP(1, func() { dense = Solve(&m, Options{Workers: 1}) })
	forceLP(2, func() { sparse = Solve(&m, Options{Workers: 1}) })
	if dense.Status != Optimal || sparse.Status != Optimal {
		t.Fatalf("status dense=%v sparse=%v", dense.Status, sparse.Status)
	}
	if dense.Objective != sparse.Objective {
		t.Fatalf("objective %v vs %v", dense.Objective, sparse.Objective)
	}
}

// TestUseSparseLPHeuristic pins the auto-switch behavior: tiny models stay
// dense, large thin models go sparse.
func TestUseSparseLPHeuristic(t *testing.T) {
	small := []Row{{Idx: []int{0}, Coef: []float64{1}, RHS: 1}}
	if useSparseLP(2, small) {
		t.Fatal("tiny model should use the dense path")
	}
	var rows []Row
	n := 400
	for r := 0; r < 120; r++ {
		rows = append(rows, Row{Idx: []int{r, (r + 7) % n, (r + 13) % n}, Coef: []float64{1, 1, 1}, RHS: 5})
	}
	if !useSparseLP(n, rows) {
		t.Fatal("large thin model should use the sparse path")
	}
	dense := make([]Row, 0, 120)
	idx := make([]int, 64)
	coef := make([]float64, 64)
	for i := range idx {
		idx[i], coef[i] = i, 1
	}
	for r := 0; r < 120; r++ {
		dense = append(dense, Row{Idx: idx, Coef: coef, RHS: 5})
	}
	if useSparseLP(64, dense) {
		t.Fatal("dense structural matrix should keep the dense path")
	}
}

// TestSparseRowSetExactAndAt unit-tests the sparse row primitives around
// insertion order and absent columns.
func TestSparseRowSetExactAndAt(t *testing.T) {
	var r spRow
	r.setExact(5, 2.5)
	r.setExact(1, -1)
	r.setExact(9, 4)
	r.setExact(5, 7) // overwrite
	if got := r.at(5); got != 7 {
		t.Fatalf("at(5) = %v, want 7", got)
	}
	if got := r.at(1); got != -1 {
		t.Fatalf("at(1) = %v, want -1", got)
	}
	if got := r.at(3); got != 0 {
		t.Fatalf("at(3) = %v, want 0 (absent)", got)
	}
	for i := 1; i < len(r.idx); i++ {
		if r.idx[i-1] >= r.idx[i] {
			t.Fatalf("indices not strictly ascending: %v", r.idx)
		}
	}
}

// TestSparsePropertyFeasible reruns the core feasibility property with the
// sparse path forced, so the existing property suite covers both backends.
func TestSparsePropertyFeasible(t *testing.T) {
	forceLP(2, func() {
		rng := rand.New(rand.NewSource(7104))
		for trial := 0; trial < 30; trial++ {
			m := randPacking(rng, 2+rng.Intn(6), 1+rng.Intn(4), 1+rng.Intn(6))
			sol := Solve(m, Options{MaxNodes: 1 + rng.Intn(50)})
			if sol.X == nil {
				continue
			}
			if !m.Feasible(sol.X, 1e-6) {
				t.Fatalf("trial %d: infeasible solution returned", trial)
			}
			if got := m.Objective(sol.X); math.Abs(got-sol.Objective) > 1e-6 {
				t.Fatalf("trial %d: objective mismatch %v vs %v", trial, got, sol.Objective)
			}
		}
	})
}
