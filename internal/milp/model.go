// Package milp is a self-contained Mixed Integer Linear Programming solver:
// a dense two-phase primal simplex for the LP relaxations and best-first
// branch-and-bound over binary variables, with a greedy rounding heuristic,
// warm-start incumbent seeding, and a wall-clock budget that returns the
// best incumbent found (the contract 3σSched relies on: "query the solver
// for the best solution found within a configurable fraction of its
// scheduling interval", §4.3.6 of the paper).
//
// The paper's 3Sigma implementation links an external commercial MILP
// solver; this package is the from-scratch substitution (see DESIGN.md §3).
//
// Models are maximization problems over non-negative variables with
// less-or-equal row constraints:
//
//	max  c·x + const
//	s.t. A·x <= b        (each row sparse)
//	     x   >= 0
//	     x_j ∈ {0,1}     for j marked binary
//
// Binary variables must be bounded above by some constraint row (in the
// scheduling encoding every indicator appears in a "at most one option"
// demand row, which provides that bound).
package milp

import (
	"fmt"
	"math"
)

// VarKind distinguishes continuous from binary variables.
type VarKind uint8

const (
	// Continuous variables range over [0, +inf).
	Continuous VarKind = iota
	// Binary variables must take value 0 or 1 in an integral solution.
	Binary
)

// Model is a MILP instance under construction. The zero value is an empty
// model ready for use. Models are not safe for concurrent mutation.
type Model struct {
	names    []string
	kinds    []VarKind
	obj      []float64
	objConst float64
	rows     []Row
}

// Row is one sparse constraint: Sum(Coef[i] * x[Idx[i]]) <= RHS.
type Row struct {
	Name string
	Idx  []int
	Coef []float64
	RHS  float64
}

// AddVar adds a variable with the given kind, objective coefficient and
// debug name, returning its index.
func (m *Model) AddVar(kind VarKind, objCoef float64, name string) int {
	m.names = append(m.names, name)
	m.kinds = append(m.kinds, kind)
	m.obj = append(m.obj, objCoef)
	return len(m.obj) - 1
}

// SetObjCoef overwrites the objective coefficient of variable v.
func (m *Model) SetObjCoef(v int, c float64) { m.obj[v] = c }

// AddObjConst adds a constant term to the objective (used when fixing
// variables during branch-and-bound substitution).
func (m *Model) AddObjConst(c float64) { m.objConst += c }

// AddLE adds the sparse constraint Sum(coefs·x[idx]) <= rhs and returns the
// row index. idx and coef must have equal length; entries with zero
// coefficients are dropped (the paper's "internal pruning of generated MILP
// expressions ... eliminating terms with zero constant", §4.3.6).
func (m *Model) AddLE(name string, idx []int, coef []float64, rhs float64) int {
	if len(idx) != len(coef) {
		panic(fmt.Sprintf("milp: row %q: len(idx)=%d len(coef)=%d", name, len(idx), len(coef)))
	}
	r := Row{Name: name, RHS: rhs}
	for i, id := range idx {
		if coef[i] == 0 {
			continue
		}
		if id < 0 || id >= len(m.obj) {
			panic(fmt.Sprintf("milp: row %q references unknown var %d", name, id))
		}
		r.Idx = append(r.Idx, id)
		r.Coef = append(r.Coef, coef[i])
	}
	m.rows = append(m.rows, r)
	return len(m.rows) - 1
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.obj) }

// NumRows returns the number of constraints.
func (m *Model) NumRows() int { return len(m.rows) }

// NumBinary returns the number of binary variables.
func (m *Model) NumBinary() int {
	n := 0
	for _, k := range m.kinds {
		if k == Binary {
			n++
		}
	}
	return n
}

// VarName returns the debug name of variable v.
func (m *Model) VarName(v int) string { return m.names[v] }

// Kind returns the kind of variable v.
func (m *Model) Kind(v int) VarKind { return m.kinds[v] }

// Rows returns the model's constraint rows. The slice and the rows' Idx/Coef
// backing arrays are the model's own storage: callers must treat them as
// read-only (exposed for invariant checkers and tests, not for mutation).
func (m *Model) Rows() []Row { return m.rows }

// Objective evaluates the objective at x (which must have NumVars entries).
func (m *Model) Objective(x []float64) float64 {
	s := m.objConst
	for i, c := range m.obj {
		if c != 0 {
			s += c * x[i]
		}
	}
	return s
}

// Feasible reports whether x satisfies all constraints within tol and, for
// binary variables, integrality within tol.
func (m *Model) Feasible(x []float64, tol float64) bool {
	if len(x) != len(m.obj) {
		return false
	}
	for i, v := range x {
		if v < -tol {
			return false
		}
		if m.kinds[i] == Binary {
			if math.Abs(v-math.Round(v)) > tol || math.Round(v) > 1 {
				return false
			}
		}
	}
	for _, r := range m.rows {
		lhs := 0.0
		for k, id := range r.Idx {
			lhs += r.Coef[k] * x[id]
		}
		if lhs > r.RHS+tol {
			return false
		}
	}
	return true
}

// Patcher rewrites a Model's numeric payload in place while asserting that
// its structure — variable count and kinds, row count, and every row's
// sparsity pattern — is unchanged since the model was built. It is the milp
// half of the incremental re-solve path (DESIGN.md §12): the scheduler's
// builder walks the new cycle's recorded columns and rows against the
// previous cycle's model and overwrites only values, never structure, so a
// successful patch yields a model bitwise-identical to a full rebuild
// without reallocating rows, columns, or debug names. Any structural
// divergence fails the walk and the caller falls back to a full rebuild.
type Patcher struct {
	m           *Model
	v, r        int
	rowsPatched int
	colsPatched int
	failed      bool
}

// BeginPatch starts an in-place patch pass over the model. The caller must
// feed every variable (Var) and then every row (Row) in construction order
// and check Done.
func (m *Model) BeginPatch() *Patcher { return &Patcher{m: m} }

// Var matches the next variable against the walk cursor and overwrites its
// objective coefficient. Returns false on kind mismatch or exhaustion.
func (p *Patcher) Var(kind VarKind, obj float64) bool {
	if p.failed || p.v >= len(p.m.obj) || p.m.kinds[p.v] != kind {
		p.failed = true
		return false
	}
	if math.Float64bits(p.m.obj[p.v]) != math.Float64bits(obj) {
		p.m.obj[p.v] = obj
		p.colsPatched++
	}
	p.v++
	return true
}

// Row matches the next row's sparsity pattern against the walk cursor and
// overwrites its coefficients and right-hand side. idx must already have
// zero-coefficient entries dropped (AddLE's rule). Returns false on any
// pattern mismatch.
func (p *Patcher) Row(idx []int, coef []float64, rhs float64) bool {
	if p.failed || p.r >= len(p.m.rows) {
		p.failed = true
		return false
	}
	r := &p.m.rows[p.r]
	if len(r.Idx) != len(idx) {
		p.failed = true
		return false
	}
	for i, id := range idx {
		if r.Idx[i] != id {
			p.failed = true
			return false
		}
	}
	changed := math.Float64bits(r.RHS) != math.Float64bits(rhs)
	r.RHS = rhs
	for i, c := range coef {
		if !changed && math.Float64bits(r.Coef[i]) != math.Float64bits(c) {
			changed = true
		}
		r.Coef[i] = c
	}
	if changed {
		p.rowsPatched++
	}
	p.r++
	return true
}

// Done reports whether the walk consumed the model exactly — every variable
// and row matched, with nothing left over.
func (p *Patcher) Done() bool {
	return !p.failed && p.v == len(p.m.obj) && p.r == len(p.m.rows)
}

// RowsPatched returns the number of rows whose coefficients or RHS changed.
func (p *Patcher) RowsPatched() int { return p.rowsPatched }

// ColsPatched returns the number of objective coefficients that changed.
func (p *Patcher) ColsPatched() int { return p.colsPatched }

// EqualBitwise compares two models field by field — names, kinds, objective
// bits, constants, and every row's name, pattern, coefficient bits, and RHS
// bits — returning "" when identical or a description of the first mismatch.
// The incremental cross-check (internal/core, Checks mode) uses it to prove
// a patched model equal to a from-scratch rebuild.
func EqualBitwise(a, b *Model) string {
	if len(a.obj) != len(b.obj) {
		return fmt.Sprintf("var count %d != %d", len(a.obj), len(b.obj))
	}
	if math.Float64bits(a.objConst) != math.Float64bits(b.objConst) {
		return fmt.Sprintf("objConst %v != %v", a.objConst, b.objConst)
	}
	for v := range a.obj {
		if a.names[v] != b.names[v] {
			return fmt.Sprintf("var %d name %q != %q", v, a.names[v], b.names[v])
		}
		if a.kinds[v] != b.kinds[v] {
			return fmt.Sprintf("var %d (%s) kind mismatch", v, a.names[v])
		}
		if math.Float64bits(a.obj[v]) != math.Float64bits(b.obj[v]) {
			return fmt.Sprintf("var %d (%s) obj %v != %v", v, a.names[v], a.obj[v], b.obj[v])
		}
	}
	if len(a.rows) != len(b.rows) {
		return fmt.Sprintf("row count %d != %d", len(a.rows), len(b.rows))
	}
	for ri := range a.rows {
		ra, rb := &a.rows[ri], &b.rows[ri]
		if ra.Name != rb.Name {
			return fmt.Sprintf("row %d name %q != %q", ri, ra.Name, rb.Name)
		}
		if math.Float64bits(ra.RHS) != math.Float64bits(rb.RHS) {
			return fmt.Sprintf("row %d (%s) rhs %v != %v", ri, ra.Name, ra.RHS, rb.RHS)
		}
		if len(ra.Idx) != len(rb.Idx) {
			return fmt.Sprintf("row %d (%s) nnz %d != %d", ri, ra.Name, len(ra.Idx), len(rb.Idx))
		}
		for k := range ra.Idx {
			if ra.Idx[k] != rb.Idx[k] {
				return fmt.Sprintf("row %d (%s) idx[%d] %d != %d", ri, ra.Name, k, ra.Idx[k], rb.Idx[k])
			}
			if math.Float64bits(ra.Coef[k]) != math.Float64bits(rb.Coef[k]) {
				return fmt.Sprintf("row %d (%s) coef[%d] %v != %v", ri, ra.Name, k, ra.Coef[k], rb.Coef[k])
			}
		}
	}
	return ""
}

// Stats describes the size of a model (exposed for the Fig. 12 scalability
// analysis of constraint/variable growth).
type Stats struct {
	Vars, Binaries, Rows, Nonzeros int
}

// Stats returns size statistics for the model.
func (m *Model) Stats() Stats {
	nz := 0
	for _, r := range m.rows {
		nz += len(r.Idx)
	}
	return Stats{Vars: m.NumVars(), Binaries: m.NumBinary(), Rows: m.NumRows(), Nonzeros: nz}
}
