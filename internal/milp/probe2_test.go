package milp

import (
	"fmt"
	"testing"
)

func TestProbeExactLP(t *testing.T) {
	// Minimal exact-shares shape: I binary, a continuous.
	// demand: I <= 1
	// link: 3I - a0 - a1 <= 0
	// cap: a0 <= 2 ; a1 <= 2
	var m Model
	I := m.AddVar(Binary, 10, "I")
	a0 := m.AddVar(Continuous, 0, "a0")
	a1 := m.AddVar(Continuous, 0, "a1")
	m.AddLE("demand", []int{I}, []float64{1}, 1)
	m.AddLE("link", []int{I, a0, a1}, []float64{3, -1, -1}, 0)
	m.AddLE("cap0", []int{a0}, []float64{1}, 2)
	m.AddLE("cap1", []int{a1}, []float64{1}, 2)
	res, oc, err := solveRelaxation(&m, []int8{-1, -1, -1})
	fmt.Printf("root LP: err=%v obj=%v+%v x=%v iters=%d\n", err, res.obj, oc, res.x, res.iters)
	sol := Solve(&m, Options{})
	fmt.Printf("solve: %v obj=%v x=%v\n", sol.Status, sol.Objective, sol.X)
}
