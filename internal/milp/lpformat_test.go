package milp

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteLPFormat(t *testing.T) {
	var m Model
	a := m.AddVar(Binary, 5, "I[j1,s0,t0]")
	b := m.AddVar(Continuous, 0, "a[j1,p0]")
	m.AddLE("demand", []int{a, b}, []float64{2, -1}, 0)
	m.AddLE("cap", []int{b}, []float64{1}, 4)
	var buf bytes.Buffer
	if err := m.WriteLP(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Maximize", "Subject To", "Binary", "End",
		"+5 I_j1_s0_t0_", "<= 0", "<= 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("LP output missing %q:\n%s", want, out)
		}
	}
	// The continuous variable must not be listed as binary.
	binSection := out[strings.Index(out, "Binary"):]
	if strings.Contains(binSection, "a_j1_p0_") {
		t.Error("continuous variable listed as binary")
	}
}

func TestWriteLPNameCollisions(t *testing.T) {
	var m Model
	m.AddVar(Binary, 1, "x!")
	m.AddVar(Binary, 1, "x?") // sanitizes to the same "x_"
	m.AddVar(Binary, 1, "9lives")
	m.AddLE("ub0", []int{0}, []float64{1}, 1)
	m.AddLE("ub1", []int{1}, []float64{1}, 1)
	m.AddLE("ub2", []int{2}, []float64{1}, 1)
	var buf bytes.Buffer
	if err := m.WriteLP(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "x1") {
		t.Errorf("colliding name should fall back to index form:\n%s", out)
	}
	if !strings.Contains(out, "v9lives") {
		t.Errorf("digit-leading name should be prefixed:\n%s", out)
	}
}

func TestWriteLPEmptyObjective(t *testing.T) {
	var m Model
	m.AddVar(Continuous, 0, "x")
	m.AddLE("c", []int{0}, []float64{1}, 1)
	var buf bytes.Buffer
	if err := m.WriteLP(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "obj: 0 ") {
		t.Errorf("zero objective should still emit a term:\n%s", buf.String())
	}
}
