package milp

import (
	"math/rand"
	"testing"
	"time"
)

// schedShapedModel builds a scheduler-shaped instance at a given size: jobs
// × options binaries with demand rows, plus partition × slot capacity rows
// in which each option appears only from its start slot on — the sparsity
// pattern milpbuild.go generates.
func schedShapedModel(rng *rand.Rand, jobs, opts, parts, slots int) *Model {
	var m Model
	type opt struct {
		v    int
		part int
		slot int
	}
	var options []opt
	for j := 0; j < jobs; j++ {
		idx := make([]int, opts)
		coef := make([]float64, opts)
		for o := 0; o < opts; o++ {
			v := m.AddVar(Binary, 1+rng.Float64()*10, "I")
			idx[o] = v
			coef[o] = 1
			options = append(options, opt{v: v, part: rng.Intn(parts), slot: o % slots})
		}
		m.AddLE("demand", idx, coef, 1)
	}
	for p := 0; p < parts; p++ {
		for s := 0; s < slots; s++ {
			var idx []int
			var coef []float64
			for _, o := range options {
				if o.part != p || s < o.slot {
					continue
				}
				idx = append(idx, o.v)
				coef = append(coef, 1+rng.Float64()*4)
			}
			if len(idx) > 0 {
				m.AddLE("cap", idx, coef, 4+rng.Float64()*20)
			}
		}
	}
	return &m
}

// BenchmarkSimplexSparse isolates the LP-core change: one root-relaxation
// solve of a scheduler-shaped model, dense tableau vs compressed sparse
// rows. Run with -bench BenchmarkSimplexSparse to see the per-backend split.
func BenchmarkSimplexSparse(b *testing.B) {
	for _, size := range []struct {
		name                     string
		jobs, opts, parts, slots int
	}{
		{"32jobs", 32, 10, 8, 5},
		{"96jobs", 96, 12, 8, 6},
	} {
		m := schedShapedModel(rand.New(rand.NewSource(11)), size.jobs, size.opts, size.parts, size.slots)
		c, rows := relaxationRows(m)
		b.Run(size.name+"/dense", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := newDenseLP(c, rows).solve(0); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(size.name+"/sparse", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := newSparseLP(c, rows).solve(0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveParallel isolates the branch-and-bound change: a full Solve
// of one scheduler-shaped model at workers=1 vs workers=GOMAXPROCS (and a
// fixed 8 for cross-host comparability). Node budget replaces the deadline
// so both variants do identical committed work.
func BenchmarkSolveParallel(b *testing.B) {
	m := schedShapedModel(rand.New(rand.NewSource(13)), 64, 12, 8, 6)
	for _, w := range []int{1, 0, 8} {
		name := "workers=gomaxprocs"
		switch w {
		case 1:
			name = "workers=1"
		case 8:
			name = "workers=8"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sol := Solve(m, Options{MaxNodes: 48, Workers: w})
				if sol.X == nil {
					b.Fatal("no solution")
				}
			}
		})
	}
}

// BenchmarkSolveSchedulingCycle is the end-to-end hot path as 3σSched
// invokes it: budgeted anytime solve on a cycle-sized model.
func BenchmarkSolveSchedulingCycle(b *testing.B) {
	m := schedShapedModel(rand.New(rand.NewSource(17)), 48, 12, 8, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol := Solve(m, Options{Deadline: time.Now().Add(150 * time.Millisecond), MaxNodes: 48})
		if sol.X == nil {
			b.Fatal("no solution")
		}
	}
}
