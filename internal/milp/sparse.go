package milp

import (
	"errors"
	"math"
	"sort"
)

// sparseLP is a compressed sparse-row two-phase primal simplex for the same
// problem class as denseLP:
//
//	max c·x  s.t.  A·x <= b (b of any sign), x >= 0.
//
// Scheduler constraint matrices are overwhelmingly zero — each placement
// indicator appears in one demand row and a handful of capacity rows — so
// rows start as sorted (index, value) pairs and every pivot touches only the
// rows with a nonzero in the entering column. Gauss-Jordan pivoting causes
// fill-in, so each row adaptively converts to a flat dense array once its
// population crosses denseRowFrac of the column count; from then on updates
// are contiguous multiply-adds over exactly the entries the dense tableau
// would touch. The pivot sequence is bitwise-identical to denseLP on the
// same input: identical operations on identical values in identical order,
// with exact zeros either stored or absent (indistinguishable to every
// pricing and ratio-test comparison). sparse_test.go asserts identical pivot
// traces against denseLP.
type sparseLP struct {
	m, n    int // constraint rows, structural columns
	cols    int // total columns incl. slack/surplus + artificials
	nArt    int
	rows    []spRow   // m hybrid sparse/dense rows
	zrow    []float64 // reduced costs, length cols+1 (last is -objective)
	basis   []int     // basis[i] = column basic in row i
	cost    []float64 // phase-2 cost per column (structural only nonzero)
	artCol0 int       // first artificial column index
	iters   int
	trace   *[]pivotRec // optional pivot trace (tests)
	ar      *lpArena    // scratch backing for rows/zrow/basis/cost/w/dn
	dnOff   int         // next free offset in ar.spDn (densified-row backing)

	// merge scratch, swapped with row storage after each sparse row update.
	scrIdx []int32
	scrVal []float64

	// wantBasis asks solve to capture the optimal basis into the result
	// (same encoding as denseLP; set for root relaxations).
	wantBasis bool
}

// denseRowFrac: a row converts to dense storage once nnz × denseRowFrac
// exceeds the column count. Beyond that point the sorted-merge update costs
// more than indexed writes into a flat array.
const denseRowFrac = 4

// spRow is one hybrid tableau row plus its right-hand side (the dense
// tableau's last column). While dn == nil the row is sparse: entries sorted
// by ascending column index. After densify, dn holds all cols coefficients
// and idx/val are dead.
type spRow struct {
	idx []int32
	val []float64
	dn  []float64
	rhs float64
}

// at returns the row's coefficient in column j (0 when absent).
func (r *spRow) at(j int) float64 {
	if r.dn != nil {
		return r.dn[j]
	}
	k := sort.Search(len(r.idx), func(i int) bool { return int(r.idx[i]) >= j })
	if k < len(r.idx) && int(r.idx[k]) == j {
		return r.val[k]
	}
	return 0
}

// setExact overwrites (or inserts) the row's entry in column j.
func (r *spRow) setExact(j int, v float64) {
	if r.dn != nil {
		r.dn[j] = v
		return
	}
	k := sort.Search(len(r.idx), func(i int) bool { return int(r.idx[i]) >= j })
	if k < len(r.idx) && int(r.idx[k]) == j {
		r.val[k] = v
		return
	}
	r.idx = append(r.idx, 0)
	r.val = append(r.val, 0)
	copy(r.idx[k+1:], r.idx[k:])
	copy(r.val[k+1:], r.val[k:])
	r.idx[k] = int32(j)
	r.val[k] = v
}

// densify converts the row to flat storage, drawing the array from the
// solver's preallocated backing (each row densifies at most once, so lp.m
// segments of lp.cols suffice).
func (lp *sparseLP) densify(r *spRow) {
	if r.dn != nil {
		return
	}
	dn := lp.ar.spDn[lp.dnOff : lp.dnOff+lp.cols : lp.dnOff+lp.cols]
	lp.dnOff += lp.cols
	for j := range dn {
		dn[j] = 0
	}
	for k, j := range r.idx {
		dn[j] = r.val[k]
	}
	r.dn = dn
	r.idx, r.val = nil, nil
}

// pivotRec records one simplex pivot (for cross-implementation assertions).
type pivotRec struct {
	enter, leave int
}

// newSparseLP builds the CSR tableau from fixed (substituted) model data;
// layout and RHS perturbation mirror newDenseLP exactly.
func newSparseLP(c []float64, rows []Row) *sparseLP {
	return newSparseLPWith(c, rows, &lpArena{})
}

// newSparseLPWith is newSparseLP drawing all working memory from ar, which
// must stay untouched by other LP instances until solve returns (the returned
// lpResult.x is freshly allocated and safe to retain).
func newSparseLPWith(c []float64, rows []Row, ar *lpArena) *sparseLP {
	m, n := len(rows), len(c)
	lp := &sparseLP{m: m, n: n, ar: ar}
	nnz := 0
	for _, r := range rows {
		if r.RHS < 0 {
			lp.nArt++
		}
		nnz += len(r.Idx)
	}
	lp.cols = n + m + lp.nArt
	lp.artCol0 = n + m
	if cap(ar.spRows) < m {
		ar.spRows = make([]spRow, m)
	}
	lp.rows = ar.spRows[:m]
	lp.basis = ints(&ar.basis, m)
	lp.cost = f64(&ar.cost, lp.cols)
	copy(lp.cost, c)
	for j := n; j < lp.cols; j++ {
		lp.cost[j] = 0
	}
	// Entry backing: every structural coefficient plus up to two bookkeeping
	// columns (slack/surplus + artificial) per row. Densified-row backing is
	// reserved up front since each row densifies at most once.
	idxBk := i32s(&ar.spIdx, nnz+2*m)
	valBk := f64(&ar.spVal, nnz+2*m)
	f64(&ar.spDn, m*lp.cols)
	off := 0
	art := lp.artCol0
	for i, r := range rows {
		neg := r.RHS < 0
		sign := 1.0
		if neg {
			sign = -1
		}
		// Stable-sort the structural entries by column; duplicate indices
		// (a Row may list one twice) then sit adjacent in their original
		// relative order, so left-to-right accumulation reproduces the dense
		// builder's += in Idx order bit for bit.
		k := len(r.Idx)
		si := i32s(&ar.srtIdx, k)
		sv := f64(&ar.srtVal, k)
		for kk, id := range r.Idx {
			si[kk] = int32(id)
			sv[kk] = sign * r.Coef[kk]
		}
		for a := 1; a < k; a++ {
			ji, jv := si[a], sv[a]
			b := a - 1
			for b >= 0 && si[b] > ji {
				si[b+1], sv[b+1] = si[b], sv[b]
				b--
			}
			si[b+1], sv[b+1] = ji, jv
		}
		start := off
		for a := 0; a < k; a++ {
			if off > start && idxBk[off-1] == si[a] {
				valBk[off-1] += sv[a]
			} else {
				idxBk[off], valBk[off] = si[a], sv[a]
				off++
			}
		}
		// Slack/surplus and artificial columns come after every structural
		// index, so appending keeps the row sorted.
		if neg {
			idxBk[off], valBk[off] = int32(n+i), -1
			off++
			idxBk[off], valBk[off] = int32(art), 1
			off++
			lp.basis[i] = art
			art++
		} else {
			idxBk[off], valBk[off] = int32(n+i), 1
			off++
			lp.basis[i] = n + i
		}
		// Full-slice caps keep later in-place appends (setExact, merge swaps)
		// from spilling into the next row's segment.
		lp.rows[i] = spRow{
			idx: idxBk[start:off:off],
			val: valBk[start:off:off],
			rhs: sign*r.RHS + perturb*float64(1+i%17),
		}
	}
	return lp
}

// solve runs both phases and returns the optimal structural solution.
func (lp *sparseLP) solve(maxIter int) (lpResult, error) {
	if maxIter <= 0 {
		maxIter = 200 * (lp.m + lp.n + 10)
	}
	if lp.nArt > 0 {
		p1 := f64z(&lp.ar.p1, lp.cols)
		for j := lp.artCol0; j < lp.cols; j++ {
			p1[j] = -1
		}
		lp.initZ(p1)
		if err := lp.iterate(p1, maxIter, lp.cols); err != nil {
			if errors.Is(err, ErrUnbounded) {
				return lpResult{}, ErrIterLimit
			}
			return lpResult{}, err
		}
		if -lp.zrow[lp.cols] > 1e-6 {
			return lpResult{}, ErrInfeasible
		}
		lp.purgeArtificials()
	}
	lp.initZ(lp.cost)
	if err := lp.iterate(lp.cost, maxIter, lp.artCol0); err != nil {
		return lpResult{}, err
	}
	x := make([]float64, lp.n)
	for i, b := range lp.basis {
		if b < lp.n {
			x[b] = lp.rows[i].rhs
		}
	}
	obj := 0.0
	for j := 0; j < lp.n; j++ {
		obj += lp.cost[j] * x[j]
	}
	res := lpResult{x: x, obj: obj, iters: lp.iters}
	if lp.wantBasis {
		res.basis = append([]int(nil), lp.basis...)
	}
	return res, nil
}

// initZ recomputes the reduced-cost row by pricing out the current basis.
func (lp *sparseLP) initZ(c []float64) {
	lp.zrow = f64(&lp.ar.zrow, lp.cols+1)
	for j := 0; j < lp.cols; j++ {
		lp.zrow[j] = -c[j]
	}
	lp.zrow[lp.cols] = 0
	for i, b := range lp.basis {
		cb := c[b]
		if cb == 0 {
			continue
		}
		r := &lp.rows[i]
		if r.dn != nil {
			for j, v := range r.dn {
				lp.zrow[j] += cb * v
			}
		} else {
			for k, j := range r.idx {
				lp.zrow[j] += cb * r.val[k]
			}
		}
		lp.zrow[lp.cols] += cb * r.rhs
	}
}

// iterate runs primal simplex pivots until optimality; the algorithm (Devex
// pricing, Bland fallback, stability-biased ratio test) matches
// denseLP.iterate decision for decision.
func (lp *sparseLP) iterate(c []float64, maxIter, colLimit int) error {
	noImprove := 0
	lastObj := math.Inf(-1)
	w := f64(&lp.ar.w, lp.cols)
	for j := range w {
		w[j] = 1
	}
	for it := 0; it < maxIter; it++ {
		lp.iters++
		bland := noImprove > 4*(lp.m+8)
		enter := -1
		if bland {
			for j := 0; j < colLimit; j++ {
				if lp.zrow[j] < -zeroTol {
					enter = j
					break
				}
			}
		} else {
			best := 0.0
			for j := 0; j < colLimit; j++ {
				d := lp.zrow[j]
				if d >= -zeroTol {
					continue
				}
				score := d * d / w[j]
				if score > best {
					best = score
					enter = j
				}
			}
		}
		if enter < 0 {
			return nil // optimal
		}
		leave := -1
		bestRatio := math.Inf(1)
		bestPiv := 0.0
		for i := 0; i < lp.m; i++ {
			a := lp.rows[i].at(enter)
			if a <= pivTol {
				continue
			}
			ratio := lp.rows[i].rhs / a
			switch {
			case ratio < bestRatio-1e-12:
				bestRatio, bestPiv, leave = ratio, a, i
			case ratio < bestRatio+1e-12 && leave >= 0:
				if bland {
					if lp.basis[i] < lp.basis[leave] {
						bestRatio, bestPiv, leave = ratio, a, i
					}
				} else if a > bestPiv {
					bestRatio, bestPiv, leave = ratio, a, i
				}
			}
		}
		if leave < 0 {
			return ErrUnbounded
		}
		if lp.trace != nil {
			*lp.trace = append(*lp.trace, pivotRec{enter, leave})
		}
		oldBasic := lp.basis[leave]
		pivVal := lp.rows[leave].at(enter)
		lp.pivot(leave, enter)
		// Devex weight update from the normalized pivot row.
		we := w[enter]
		pr := &lp.rows[leave]
		maxW := 1.0
		if pr.dn != nil {
			for j := 0; j < colLimit; j++ {
				v := pr.dn[j]
				if j == enter || v == 0 {
					continue
				}
				if t := v * v * we; t > w[j] {
					w[j] = t
					if t > maxW {
						maxW = t
					}
				}
			}
		} else {
			for k, j := range pr.idx {
				jj := int(j)
				if jj >= colLimit || jj == enter {
					continue
				}
				v := pr.val[k]
				if t := v * v * we; t > w[jj] {
					w[jj] = t
					if t > maxW {
						maxW = t
					}
				}
			}
		}
		if lw := math.Max(we/(pivVal*pivVal), 1); lw > w[oldBasic] {
			w[oldBasic] = lw
		}
		if maxW > 1e10 {
			for j := range w {
				w[j] = 1
			}
		}
		obj := -lp.zrow[lp.cols]
		if obj > lastObj+1e-10 {
			lastObj = obj
			noImprove = 0
		} else {
			noImprove++
		}
	}
	return ErrIterLimit
}

// pivot performs a Gauss-Jordan pivot on (row r, column e), eliminating e
// from every other row that carries it.
func (lp *sparseLP) pivot(r, e int) {
	pr := &lp.rows[r]
	p := pr.at(e)
	inv := 1 / p
	if pr.dn != nil {
		for j := range pr.dn {
			pr.dn[j] *= inv
		}
	} else {
		for k := range pr.val {
			pr.val[k] *= inv
		}
	}
	pr.rhs *= inv
	pr.setExact(e, 1)
	for i := 0; i < lp.m; i++ {
		if i == r {
			continue
		}
		ti := &lp.rows[i]
		f := ti.at(e)
		if f == 0 {
			continue
		}
		// A sparse target hit by a dense pivot row will fill in anyway;
		// densify it up front and take the flat path.
		if ti.dn == nil && (pr.dn != nil || (len(ti.idx)+len(pr.idx))*denseRowFrac > lp.cols) {
			lp.densify(ti)
		}
		switch {
		case ti.dn != nil && pr.dn != nil:
			dn, pd := ti.dn, pr.dn
			for j := range dn {
				dn[j] -= f * pd[j]
			}
			dn[e] = 0
		case ti.dn != nil:
			for k, j := range pr.idx {
				ti.dn[j] -= f * pr.val[k]
			}
			ti.dn[e] = 0
		default:
			lp.mergeSub(ti, pr, f, e)
		}
		ti.rhs -= f * pr.rhs
	}
	f := lp.zrow[e]
	if f != 0 {
		if pr.dn != nil {
			for j, v := range pr.dn {
				lp.zrow[j] -= f * v
			}
		} else {
			for k, j := range pr.idx {
				lp.zrow[j] -= f * pr.val[k]
			}
		}
		lp.zrow[lp.cols] -= f * pr.rhs
		lp.zrow[e] = 0
	}
	lp.basis[r] = e
}

// mergeSub computes t ← t − f·p over the sorted entry lists, dropping the
// eliminated column e and any entry that cancels to exactly zero (identical,
// for every later comparison, to the dense tableau's stored 0.0).
func (lp *sparseLP) mergeSub(t, p *spRow, f float64, e int) {
	oi, ov := lp.scrIdx[:0], lp.scrVal[:0]
	a, b := 0, 0
	for a < len(t.idx) || b < len(p.idx) {
		var j int32
		var v float64
		switch {
		case b >= len(p.idx) || (a < len(t.idx) && t.idx[a] < p.idx[b]):
			j, v = t.idx[a], t.val[a]
			a++
		case a >= len(t.idx) || p.idx[b] < t.idx[a]:
			j, v = p.idx[b], 0-f*p.val[b]
			b++
		default: // equal indices
			j, v = t.idx[a], t.val[a]-f*p.val[b]
			a++
			b++
		}
		if int(j) == e || v == 0 {
			continue
		}
		oi = append(oi, j)
		ov = append(ov, v)
	}
	// Swap the scratch buffers with the row's storage; the old row slices
	// become the next merge's scratch, so steady state allocates nothing.
	lp.scrIdx, t.idx = t.idx[:0], oi
	lp.scrVal, t.val = t.val[:0], ov
}

// purgeArtificials pivots basic artificials out (or neutralizes redundant
// rows), mirroring denseLP.purgeArtificials.
func (lp *sparseLP) purgeArtificials() {
	for i := 0; i < lp.m; i++ {
		if lp.basis[i] < lp.artCol0 {
			continue
		}
		r := &lp.rows[i]
		done := false
		if r.dn != nil {
			for j := 0; j < lp.artCol0; j++ {
				if math.Abs(r.dn[j]) > pivTol {
					lp.pivot(i, j)
					done = true
					break
				}
			}
		} else {
			for k, j := range r.idx {
				if int(j) >= lp.artCol0 {
					break // entries are sorted; nothing structural remains
				}
				if math.Abs(r.val[k]) > pivTol {
					lp.pivot(i, int(j))
					done = true
					break
				}
			}
		}
		if !done {
			// Redundant row: neutralize it.
			if r.dn != nil {
				for j := range r.dn {
					r.dn[j] = 0
				}
			} else {
				r.idx = r.idx[:0]
				r.val = r.val[:0]
			}
			r.rhs = 0
			r.setExact(lp.basis[i], 1)
		}
	}
}
