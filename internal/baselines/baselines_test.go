package baselines

import (
	"testing"

	"threesigma/internal/core"
	"threesigma/internal/job"
	"threesigma/internal/predictor"
	"threesigma/internal/simulator"
)

func runSim(t *testing.T, s simulator.Scheduler, jobs []*job.Job, nodes, parts int) *simulator.Result {
	t.Helper()
	sim, err := simulator.New(s, jobs, simulator.Options{
		Cluster:       simulator.NewCluster(nodes, parts),
		CycleInterval: 10,
		DrainWindow:   7200,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim.Run()
}

func get(res *simulator.Result, id job.ID) *simulator.Outcome {
	for _, o := range res.Outcomes {
		if o.Job.ID == id {
			return o
		}
	}
	return nil
}

func TestFactoryPolicies(t *testing.T) {
	p := predictor.New(predictor.Config{})
	cases := []struct {
		s       *core.Scheduler
		name    string
		useDist bool
		oe      core.OEMode
		preempt bool
	}{
		{ThreeSigma(p, core.Config{}), "3Sigma", true, core.OEAdaptive, true},
		{PointPerfEst(core.Config{}), "PointPerfEst", false, core.OEOff, true},
		{PointRealEst(p, core.Config{}), "PointRealEst", false, core.OEOff, true},
		{NoDist(p, core.Config{}), "3SigmaNoDist", false, core.OEAdaptive, true},
		{NoOE(p, core.Config{}), "3SigmaNoOE", true, core.OEOff, true},
		{NoAdapt(p, core.Config{}), "3SigmaNoAdapt", true, core.OEAlways, true},
	}
	for _, c := range cases {
		pol := c.s.Config().Policy
		if pol.Name != c.name {
			t.Errorf("name = %q, want %q", pol.Name, c.name)
		}
		if pol.UseDistribution != c.useDist || pol.Overestimate != c.oe || pol.Preemption != c.preempt {
			t.Errorf("%s policy = %+v", c.name, pol)
		}
		if !pol.Underestimate {
			t.Errorf("%s should have under-estimate handling (Table 1 note)", c.name)
		}
	}
}

func TestPrioRunsSLOBeforeBE(t *testing.T) {
	pr := NewPrio()
	slo := &job.Job{ID: 1, Class: job.SLO, Submit: 0, Deadline: 1000, Tasks: 1, Runtime: 100}
	be := &job.Job{ID: 2, Class: job.BestEffort, Submit: 0, Tasks: 1, Runtime: 100}
	res := runSim(t, pr, []*job.Job{slo, be}, 1, 1)
	oS, oB := get(res, 1), get(res, 2)
	if !oS.Completed || !oB.Completed {
		t.Fatal("both should complete")
	}
	if oS.FirstStart >= oB.FirstStart {
		t.Errorf("Prio must start SLO first: slo=%v be=%v", oS.FirstStart, oB.FirstStart)
	}
}

func TestPrioPreemptsBEForSLO(t *testing.T) {
	pr := NewPrio()
	be := &job.Job{ID: 1, Class: job.BestEffort, Submit: 0, Tasks: 2, Runtime: 5000}
	slo := &job.Job{ID: 2, Class: job.SLO, Submit: 100, Deadline: 600, Tasks: 2, Runtime: 100}
	res := runSim(t, pr, []*job.Job{be, slo}, 2, 1)
	if o := get(res, 1); o.Preemptions == 0 {
		t.Error("Prio should preempt the BE job")
	}
	if o := get(res, 2); o.MissedDeadline() {
		t.Errorf("SLO should meet deadline: %+v", o)
	}
}

// TestPrioPreemptsEvenWhenUnnecessary captures the paper's observation that
// Prio preempts BE jobs "even when deadline slack makes preemption
// unnecessary": the BE job would finish long before the SLO deadline, but
// Prio cannot know and preempts anyway.
func TestPrioPreemptsEvenWhenUnnecessary(t *testing.T) {
	pr := NewPrio()
	be := &job.Job{ID: 1, Class: job.BestEffort, Submit: 0, Tasks: 2, Runtime: 50}
	slo := &job.Job{ID: 2, Class: job.SLO, Submit: 10, Deadline: 10000, Tasks: 2, Runtime: 100}
	res := runSim(t, pr, []*job.Job{be, slo}, 2, 1)
	if o := get(res, 1); o.Preemptions == 0 {
		t.Error("runtime-unaware Prio should preempt despite the huge slack")
	}
}

func TestPrioEDFWithinSLO(t *testing.T) {
	pr := NewPrio()
	loose := &job.Job{ID: 1, Class: job.SLO, Submit: 0, Deadline: 10000, Tasks: 1, Runtime: 100}
	tight := &job.Job{ID: 2, Class: job.SLO, Submit: 0, Deadline: 500, Tasks: 1, Runtime: 100}
	res := runSim(t, pr, []*job.Job{loose, tight}, 1, 1)
	oL, oT := get(res, 1), get(res, 2)
	if oT.FirstStart >= oL.FirstStart {
		t.Errorf("EDF violated: tight=%v loose=%v", oT.FirstStart, oL.FirstStart)
	}
}

func TestPrioAttemptsOverestimatedJobs(t *testing.T) {
	// Prio has no runtime estimates, so it attempts every SLO job; this is
	// the paper's explanation for Prio beating PointRealEst on misses.
	pr := NewPrio()
	slo := &job.Job{ID: 1, Class: job.SLO, Submit: 0, Deadline: 300, Tasks: 1, Runtime: 100}
	res := runSim(t, pr, []*job.Job{slo}, 1, 1)
	if o := get(res, 1); !o.Completed || o.MissedDeadline() {
		t.Errorf("Prio should just run the job: %+v", o)
	}
}

func TestGreedyAllocPreferredFirst(t *testing.T) {
	j := &job.Job{Tasks: 3, Preferred: []int{1}}
	free := simulator.Alloc{2, 2}
	a := greedyAlloc(j, free)
	if a == nil || a[1] != 2 || a[0] != 1 {
		t.Errorf("alloc = %v, want preferred partition filled first", a)
	}
	big := &job.Job{Tasks: 5}
	if greedyAlloc(big, free) != nil {
		t.Error("oversized request should fail")
	}
}
