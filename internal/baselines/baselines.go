// Package baselines provides the comparison schedulers of Table 1 and the
// Fig. 8 ablations as ready-made configurations:
//
//   - ThreeSigma: 3σSched + 3σPredict distributions + adaptive OE handling.
//   - PointPerfEst: 3σSched + oracle point estimates (hypothetical).
//   - PointRealEst: 3σSched + 3σPredict point estimates, no OE handling —
//     the state of the art in point-estimate schedulers (TetriSched/Morpheus
//     class, "enhanced with under-estimate handling and preemption").
//   - NoDist / NoOE / NoAdapt: single-feature ablations of 3Sigma.
//   - Prio: a runtime-unaware strict-priority scheduler (Borg-like).
//
// All MILP-based systems share internal/core; only the estimator and policy
// toggles differ, exactly as in the paper's experimental setup.
package baselines

import (
	"sort"

	"threesigma/internal/core"
	"threesigma/internal/job"
	"threesigma/internal/predictor"
	"threesigma/internal/simulator"
)

// ThreeSigma returns the full 3Sigma system: distribution scheduling with
// adaptive over-estimate handling (Table 1, row 1).
func ThreeSigma(p *predictor.Predictor, cfg core.Config) *core.Scheduler {
	cfg.Policy = core.Policy{
		Name:            "3Sigma",
		UseDistribution: true,
		Overestimate:    core.OEAdaptive,
		Underestimate:   true,
		Preemption:      true,
	}
	return core.New(core.PredictorEstimator{P: p}, cfg)
}

// PointPerfEst returns the hypothetical scheduler given perfect point
// runtime estimates (Table 1, row 2).
func PointPerfEst(cfg core.Config) *core.Scheduler {
	cfg.Policy = core.Policy{
		Name:            "PointPerfEst",
		UseDistribution: false,
		Overestimate:    core.OEOff,
		Underestimate:   true,
		Preemption:      true,
	}
	return core.New(core.PerfectEstimator{}, cfg)
}

// PointRealEst returns the state-of-the-art point-estimate scheduler using
// 3σPredict's best point estimates (Table 1, row 3).
func PointRealEst(p *predictor.Predictor, cfg core.Config) *core.Scheduler {
	cfg.Policy = core.Policy{
		Name:            "PointRealEst",
		UseDistribution: false,
		Overestimate:    core.OEOff,
		Underestimate:   true,
		Preemption:      true,
	}
	return core.New(core.PointPredictorEstimator{P: p}, cfg)
}

// NoDist is 3Sigma with point estimates instead of distributions but with
// over-estimate handling retained (Fig. 8's 3SigmaNoDist).
func NoDist(p *predictor.Predictor, cfg core.Config) *core.Scheduler {
	cfg.Policy = core.Policy{
		Name:            "3SigmaNoDist",
		UseDistribution: false,
		Overestimate:    core.OEAdaptive,
		Underestimate:   true,
		Preemption:      true,
	}
	return core.New(core.PointPredictorEstimator{P: p}, cfg)
}

// NoOE is 3Sigma with over-estimate handling disabled (Fig. 8's 3SigmaNoOE).
func NoOE(p *predictor.Predictor, cfg core.Config) *core.Scheduler {
	cfg.Policy = core.Policy{
		Name:            "3SigmaNoOE",
		UseDistribution: true,
		Overestimate:    core.OEOff,
		Underestimate:   true,
		Preemption:      true,
	}
	return core.New(core.PredictorEstimator{P: p}, cfg)
}

// NoAdapt is 3Sigma with over-estimate handling unconditionally enabled
// (Fig. 8's 3SigmaNoAdapt).
func NoAdapt(p *predictor.Predictor, cfg core.Config) *core.Scheduler {
	cfg.Policy = core.Policy{
		Name:            "3SigmaNoAdapt",
		UseDistribution: true,
		Overestimate:    core.OEAlways,
		Underestimate:   true,
		Preemption:      true,
	}
	return core.New(core.PredictorEstimator{P: p}, cfg)
}

// Prio is the runtime-unaware priority scheduler (Table 1, row 4): SLO jobs
// get strict priority over best-effort jobs, preempting them when needed,
// with no use of runtime information — representative of Borg-class
// production schedulers.
type Prio struct {
	starts      int
	preemptions int
}

// NewPrio returns a priority scheduler.
func NewPrio() *Prio { return &Prio{} }

// JobSubmitted implements simulator.Scheduler (Prio ignores estimates).
func (pr *Prio) JobSubmitted(*job.Job, float64) {}

// JobCompleted implements simulator.Scheduler.
func (pr *Prio) JobCompleted(*job.Job, float64, float64) {}

// Cycle implements simulator.Scheduler: earliest-deadline-first SLO jobs,
// then FIFO best-effort jobs; an SLO job that does not fit triggers
// preemption of the most recently started BE jobs (minimal lost work).
func (pr *Prio) Cycle(st *simulator.State) simulator.Decision {
	var dec simulator.Decision
	free := st.Free.Clone()

	// Preemptable BE jobs, most recent start first.
	preemptable := make([]*simulator.RunningJob, 0, len(st.Running))
	for _, r := range st.Running {
		if r.Job.Class == job.BestEffort {
			preemptable = append(preemptable, r)
		}
	}
	sort.Slice(preemptable, func(a, b int) bool { return preemptable[a].Start > preemptable[b].Start })
	preempted := map[job.ID]bool{}

	slo := make([]*job.Job, 0, len(st.Pending))
	be := make([]*job.Job, 0, len(st.Pending))
	for _, j := range st.Pending {
		if j.Class == job.SLO {
			slo = append(slo, j)
		} else {
			be = append(be, j)
		}
	}
	sort.SliceStable(slo, func(a, b int) bool { return slo[a].Deadline < slo[b].Deadline })
	sort.SliceStable(be, func(a, b int) bool { return be[a].Submit < be[b].Submit })

	totalFree := 0
	for _, f := range free {
		totalFree += f
	}
	for _, j := range slo {
		// Preempt BE jobs until this SLO job fits (Prio does this even
		// when deadline slack would have made waiting safe — it cannot
		// know, having no runtime information).
		for totalFree < j.Tasks && len(preemptable) > 0 {
			victim := preemptable[0]
			preemptable = preemptable[1:]
			if preempted[victim.Job.ID] {
				continue
			}
			preempted[victim.Job.ID] = true
			dec.Preempt = append(dec.Preempt, victim.Job.ID)
			pr.preemptions++
			for p, n := range victim.Alloc {
				free[p] += n
				totalFree += n
			}
		}
		alloc := greedyAlloc(j, free)
		if alloc == nil {
			continue
		}
		for p, n := range alloc {
			free[p] -= n
			totalFree -= n
		}
		dec.Start = append(dec.Start, simulator.StartAction{Job: j.ID, Alloc: alloc})
		pr.starts++
	}
	for _, j := range be {
		alloc := greedyAlloc(j, free)
		if alloc == nil {
			continue
		}
		for p, n := range alloc {
			free[p] -= n
			totalFree -= n
		}
		dec.Start = append(dec.Start, simulator.StartAction{Job: j.ID, Alloc: alloc})
		pr.starts++
	}
	return dec
}

// greedyAlloc fills the job's gang from preferred partitions first, then
// anywhere.
func greedyAlloc(j *job.Job, free simulator.Alloc) simulator.Alloc {
	alloc := make(simulator.Alloc, len(free))
	need := j.Tasks
	for pass := 0; pass < 2 && need > 0; pass++ {
		for p, f := range free {
			if need == 0 {
				break
			}
			if pass == 0 && !j.PrefersPartition(p) {
				continue
			}
			avail := f - alloc[p]
			if avail <= 0 {
				continue
			}
			take := avail
			if take > need {
				take = need
			}
			alloc[p] += take
			need -= take
		}
	}
	if need > 0 {
		return nil
	}
	return alloc
}
