package a

import "math/rand"

// Roll uses math/rand outside internal/stats: the import itself is flagged.
func Roll() int {
	return rand.Intn(6)
}
