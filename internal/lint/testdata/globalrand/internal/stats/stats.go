// Package stats mirrors the repo's sanctioned RNG home: math/rand is
// allowed here and only here.
package stats

import "math/rand"

// New returns a seeded source; not flagged inside internal/stats.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
