module lintfixture/globalrand

go 1.24
