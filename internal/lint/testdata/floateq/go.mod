module lintfixture/floateq

go 1.24
