package a

// Same compares floats with ==: flagged.
func Same(x, y float64) bool {
	return x == y
}

// Differ compares floats with !=: flagged.
func Differ(x, y float32) bool {
	return x != y
}

// IsZero compares against the literal zero, the sanctioned sentinel test:
// not flagged.
func IsZero(x float64) bool {
	return x == 0
}

// IntsEqual compares integers; the rule only watches floats.
func IntsEqual(a, b int) bool {
	return a == b
}

// Sentinel compares against a nonzero constant: still flagged — only the
// exact-zero sentinel is exempt.
func Sentinel(x float64) bool {
	return x == 1.5
}
