package a

import "time"

// Allowed carries a well-formed suppression with a reason: the wallclock
// diagnostic is swallowed and nothing is reported.
func Allowed() time.Time {
	//lint:allow wallclock fixture exercises the suppression path
	return time.Now()
}

// NoReason omits the mandatory reason: badallow is reported AND the
// wallclock diagnostic still fires — the suppression is ignored.
func NoReason() time.Time {
	//lint:allow wallclock
	return time.Now()
}

// UnknownRule names a rule that does not exist: badallow.
func UnknownRule() time.Time {
	//lint:allow nosuchrule typo'd rule names must not silently suppress
	return time.Now()
}

// WrongLine puts the allow two lines above the diagnostic, outside the
// line/line+1 window: the wallclock diagnostic still fires.
func WrongLine() time.Time {
	//lint:allow wallclock too far away to apply

	return time.Now()
}

// Stale carries a reasoned allow for a rule that never fires here: the
// full-catalog run reports the dead suppression itself.
func Stale() int {
	//lint:allow floateq nothing here compares floats
	return 1
}
