module lintfixture/suppress

go 1.24
