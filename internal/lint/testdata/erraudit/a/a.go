package a

import "os"

// Flush drops the fsync error outright: flagged. A dropped Sync error
// means state was acked without being durable.
func Flush(f *os.File) {
	f.Sync()
}

// FlushUnderscore discards it explicitly: still flagged — erraudit exists
// precisely because `_ =` makes dropped durability errors look deliberate.
func FlushUnderscore(f *os.File) {
	_ = f.Sync()
}

// FlushDeferred defers the sync with nowhere for the error to go: flagged.
func FlushDeferred(f *os.File) {
	defer f.Sync()
}

// FlushChecked handles the error: fine.
func FlushChecked(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return nil
}

// Spill drops a write error: flagged.
func Spill(f *os.File, b []byte) {
	f.Write(b)
}

// SpillN keeps the count but underscores the error: flagged.
func SpillN(f *os.File, b []byte) int {
	n, _ := f.Write(b)
	return n
}

// writeCheckpoint matches the checkpoint-writer name pattern.
func writeCheckpoint(path string) error {
	return nil
}

// Snapshot discards the checkpoint writer's error: flagged.
func Snapshot() {
	writeCheckpoint("ckpt")
}

// SnapshotChecked handles it: fine.
func SnapshotChecked() error {
	return writeCheckpoint("ckpt")
}

// Shut drops a Close error: fine — Close is not in the durability set
// (erraudit is not a general errcheck).
func Shut(f *os.File) {
	f.Close()
}
