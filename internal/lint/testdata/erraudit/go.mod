module lintfixture/erraudit

go 1.24
