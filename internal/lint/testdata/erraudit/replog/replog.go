// Package replog mimics the real replicated log's shape: every Append*
// method is in the durability call set by name.
package replog

type Log struct {
	recs []int
}

func (l *Log) Append(x int) (int, error) {
	l.recs = append(l.recs, x)
	return len(l.recs), nil
}

func (l *Log) AppendBatch(xs []int) error {
	l.recs = append(l.recs, xs...)
	return nil
}

// Drop ignores the append error: flagged.
func (l *Log) Drop(x int) {
	l.Append(x)
}

// DropSeq keeps the sequence number but underscores the error: flagged.
func (l *Log) DropSeq(x int) int {
	seq, _ := l.Append(x)
	return seq
}

// DropBatch ignores a batch append: flagged.
func (l *Log) DropBatch(xs []int) {
	l.AppendBatch(xs)
}

// Keep handles the error: fine.
func (l *Log) Keep(x int) error {
	_, err := l.Append(x)
	return err
}
