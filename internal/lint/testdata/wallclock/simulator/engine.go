package simulator

import "time"

// Tick lives in the simulator package but NOT in clock.go, so its wall
// clock read is flagged: the exemption is per-file, not per-package.
func Tick() time.Time {
	return time.Now()
}
