// Package simulator mirrors the repo layout: clock.go in a simulator
// directory is the sanctioned wall-clock boundary and is exempt.
package simulator

import "time"

// Now is the one place the fixture may touch the real clock.
func Now() time.Time {
	return time.Now()
}
