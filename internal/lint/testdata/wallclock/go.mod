module lintfixture/wallclock

go 1.24
