package a

import "time"

// Stamp reads the wall clock directly: flagged.
func Stamp() time.Time {
	return time.Now()
}

// Age calls time.Since, which reads the wall clock: flagged.
func Age(t time.Time) time.Duration {
	return time.Since(t)
}

// Later uses the After *method* on a Time value, which is pure arithmetic
// and must not be flagged (only the package-level time.After is banned).
func Later(a, b time.Time) bool {
	return a.After(b)
}

// Format is pure formatting; never flagged.
func Format(t time.Time) string {
	return t.Format(time.RFC3339)
}
