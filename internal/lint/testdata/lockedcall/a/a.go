package a

import (
	"sync"
	"time"
)

// Service mirrors the control plane's big-lock shape: the default hot-lock
// set marks any field path ending in Service.mu as hot.
type Service struct {
	mu sync.Mutex
	n  int
}

// applyLocked follows the caller-holds-mu convention.
func (s *Service) applyLocked() {
	s.n++
}

// Good holds the guard across the call on every path: fine.
func (s *Service) Good() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applyLocked()
}

// Bad calls the *Locked method without its guard: flagged.
func (s *Service) Bad() {
	s.applyLocked()
}

// BadGo hands the *Locked method to a goroutine: the new goroutine does
// not inherit the caller's critical section, flagged.
func (s *Service) BadGo() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go s.applyLocked()
}

// chainLocked forwards to another *Locked method while the guard is held
// by convention: fine — entry facts flow through the chain.
func (s *Service) chainLocked() {
	s.applyLocked()
}

// relockLocked locks its own guard, which its caller already holds by
// convention: self-deadlock, flagged.
func (s *Service) relockLocked() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// Sleepy blocks while the hot mutex is held: flagged at the sleep.
func (s *Service) Sleepy() {
	s.mu.Lock()
	time.Sleep(time.Millisecond)
	s.mu.Unlock()
}

// nap itself never locks anything, but Indirect reaches it with the hot
// mutex held: flagged with the witness call path.
func (s *Service) nap() {
	time.Sleep(time.Millisecond)
}

func (s *Service) Indirect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nap()
}

// NonBlocking sends with a default arm under the lock: never blocks, fine.
func (s *Service) NonBlocking(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
}

// OffLock sleeps after releasing the hot mutex: fine.
func (s *Service) OffLock() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}
