module lintfixture/lockedcall

go 1.24
