package a

import "sync"

var (
	amu sync.Mutex
	bmu sync.Mutex
)

// LockAB and LockBA acquire the package mutexes in opposite orders — the
// classic ABBA deadlock. The cycle is reported once, on the first edge.
func LockAB() {
	amu.Lock()
	bmu.Lock()
	bmu.Unlock()
	amu.Unlock()
}

func LockBA() {
	bmu.Lock()
	amu.Lock()
	amu.Unlock()
	bmu.Unlock()
}

// Handoff releases amu before taking bmu: no nesting, no edge, no report.
func Handoff() {
	amu.Lock()
	amu.Unlock()
	bmu.Lock()
	bmu.Unlock()
}

// R exercises the interprocedural re-acquire check.
type R struct {
	mu sync.Mutex
	n  int
}

// Reenter holds mu and calls a helper that locks it again: mutexes are
// non-reentrant, so the inner Lock can never succeed.
func (r *R) Reenter() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.grab()
}

func (r *R) grab() {
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
}

// Double re-locks in the same frame: reported directly.
func Double() {
	amu.Lock()
	amu.Lock()
}

// Sequential calls grab without holding anything: fine — grab locks and
// unlocks on its own.
func Sequential(r *R) {
	r.grab()
	r.grab()
}
