module lintfixture/lockorder

go 1.24
