module lintfixture/guardedfield

go 1.24
