package a

import "sync"

// Box holds a field with a machine-readable guard annotation.
type Box struct {
	mu sync.Mutex
	n  int // guarded by mu
	m  int // unannotated; never flagged
}

// Bad reads n without ever locking mu: flagged.
func (b *Box) Bad() int {
	return b.n
}

// Good locks the declared guard before touching the field: not flagged.
func (b *Box) Good() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// peekLocked relies on the caller holding mu; the *Locked naming
// convention exempts it.
func (b *Box) peekLocked() int {
	return b.n
}

// Unannotated fields are out of scope even without a lock.
func (b *Box) Other() int {
	return b.m
}

// peek relies on its only caller holding mu. Guard facts flow through the
// call chain interprocedurally, so the Locked suffix is not required when
// every transitive call site provably holds the guard.
func (b *Box) peek() int {
	return b.n
}

// Use is peek's only caller and holds mu across the call.
func (b *Box) Use() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peek()
}

// Pair has two mutexes: the interprocedural model exempts a *Locked
// method only for its own guard (the field named mu), not wholesale.
type Pair struct {
	mu  sync.Mutex
	wmu sync.Mutex
	a   int // guarded by mu
	b   int // guarded by wmu
}

// bothLocked holds mu by convention: reading a is fine, but b is guarded
// by the other mutex and is flagged — the historical blanket *Locked
// exemption would have hidden it.
func (p *Pair) bothLocked() int {
	return p.a + p.b
}

// bothUse keeps bothLocked reachable under mu only.
func (p *Pair) bothUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bothLocked()
}
