package a

import "sync"

// Box holds a field with a machine-readable guard annotation.
type Box struct {
	mu sync.Mutex
	n  int // guarded by mu
	m  int // unannotated; never flagged
}

// Bad reads n without ever locking mu: flagged.
func (b *Box) Bad() int {
	return b.n
}

// Good locks the declared guard before touching the field: not flagged.
func (b *Box) Good() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// peekLocked relies on the caller holding mu; the *Locked naming
// convention exempts it.
func (b *Box) peekLocked() int {
	return b.n
}

// Unannotated fields are out of scope even without a lock.
func (b *Box) Other() int {
	return b.m
}
