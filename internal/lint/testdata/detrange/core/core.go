// Package core is named to match the analyzer's deterministic-package set.
package core

import "sort"

// Sum iterates a map in a deterministic package with an order-dependent
// body: flagged.
func Sum(m map[string]int) int {
	total := 0
	for k, v := range m {
		if k != "" {
			total += v
		}
	}
	return total
}

// Keys collects then sorts: the collection loop is order-independent and
// must not be flagged.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Count increments a counter with neither key nor value bound: allowed.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// SumValues binds the value, so the accumulation order is observable in
// floating point; this exact shape loses bit-determinism: flagged.
func SumValues(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
