// Package util is outside the deterministic set: map ranges are fine here.
package util

// Any returns an arbitrary key; not flagged outside deterministic packages.
func Any(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}
