module lintfixture/detrange

go 1.24
