package a

import "sync"

// Counter embeds a mutex; copying a Counter copies the lock.
type Counter struct {
	mu sync.Mutex
	n  int
}

// TakeByValue receives a sync.Mutex by value: flagged on the parameter.
func TakeByValue(mu sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
}

// Snapshot copies a struct that contains a mutex: flagged at the copy.
func Snapshot(c *Counter) Counter {
	cp := *c
	return cp
}

// ByPointer passes locks by pointer, the correct idiom: not flagged.
func ByPointer(mu *sync.Mutex, c *Counter) {
	mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	mu.Unlock()
}

// value receiver on a lock-bearing type: flagged on the receiver.
func (c Counter) Peek() int {
	return c.n
}
