module lintfixture/mutexcopy

go 1.24
