package lint

import (
	"go/ast"
	"go/types"
)

// runMutexCopy reports sync.Mutex / sync.RWMutex values copied by value: a
// copy forks the lock state, so the copy guards nothing. Reported shapes:
//
//   - assignment from an existing value (y := x, y = *p, y = s.field)
//   - passing such a value as a call argument
//   - returning such a value
//   - declaring a parameter, result, or receiver of a lock-bearing type
//     by value
//
// Fresh values (composite literals, new/zero declarations) are fine.
func runMutexCopy(u *Unit, f *File, rep reporter) {
	ast.Inspect(f.AST, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if blankIdent(n.Lhs[i]) {
					continue
				}
				if cp, t := copiedLock(u, rhs); cp {
					rep(rhs, "assignment copies a value containing %s: use a pointer", t)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if cp, t := copiedLock(u, res); cp {
					rep(res, "return copies a value containing %s: return a pointer", t)
				}
			}
		case *ast.CallExpr:
			if isConversion(u, n) {
				return true
			}
			for _, arg := range n.Args {
				if cp, t := copiedLock(u, arg); cp {
					rep(arg, "call passes a value containing %s by value: pass a pointer", t)
				}
			}
		case *ast.FuncDecl:
			if n.Recv != nil {
				checkFieldList(u, n.Recv, "receiver", rep)
			}
			if n.Type.Params != nil {
				checkFieldList(u, n.Type.Params, "parameter", rep)
			}
			if n.Type.Results != nil {
				checkFieldList(u, n.Type.Results, "result", rep)
			}
		case *ast.FuncLit:
			if n.Type.Params != nil {
				checkFieldList(u, n.Type.Params, "parameter", rep)
			}
			if n.Type.Results != nil {
				checkFieldList(u, n.Type.Results, "result", rep)
			}
		}
		return true
	})
}

// copiedLock reports whether evaluating e copies an existing value whose
// type (transitively, by value) contains a sync.Mutex/RWMutex. Composite
// literals and function-call results construct fresh values and are not
// copies of a live lock.
func copiedLock(u *Unit, e ast.Expr) (bool, string) {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		t := u.Info.TypeOf(e)
		if t == nil {
			return false, ""
		}
		if lt := lockType(t, nil); lt != "" {
			return true, lt
		}
	}
	return false, ""
}

// checkFieldList reports by-value lock-bearing entries of a receiver,
// parameter, or result list.
func checkFieldList(u *Unit, fl *ast.FieldList, kind string, rep reporter) {
	for _, fd := range fl.List {
		t := u.Info.TypeOf(fd.Type)
		if t == nil {
			continue
		}
		if lt := lockType(t, nil); lt != "" {
			rep(fd, "%s declares a value containing %s: use a pointer", kind, lt)
		}
	}
}

// lockType returns the name of the sync lock that t contains by value
// ("" when none). Pointers, slices, maps, channels, and interfaces break
// the containment: the lock is shared, not copied.
func lockType(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return "sync." + obj.Name()
		}
	}
	switch ut := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < ut.NumFields(); i++ {
			if lt := lockType(ut.Field(i).Type(), seen); lt != "" {
				return lt
			}
		}
	case *types.Array:
		return lockType(ut.Elem(), seen)
	}
	return ""
}

func blankIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// isConversion reports whether call is a type conversion, not a function
// call (conversions of lock-free views aside, T(x) shares x's memory only
// for reference types; conversions of lock-bearing structs are copies, but
// go vet owns that corner — here they would double-report the assignment).
func isConversion(u *Unit, call *ast.CallExpr) bool {
	tv, ok := u.Info.Types[call.Fun]
	return ok && tv.IsType()
}
