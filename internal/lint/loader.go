package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// File is one parsed source file of a unit.
type File struct {
	Path   string // path as given to the parser (relative to the module root)
	AST    *ast.File
	Test   bool // *_test.go
	Report bool // diagnostics from this file belong to this unit
}

// UnitKind distinguishes the three loader passes a Unit can come from.
type UnitKind int

const (
	// UnitBase is a package's non-test files (pass 1). Base units are the
	// substrate of the interprocedural analyses: their types.Func objects
	// are shared across packages, so the module-wide call graph is built
	// over base units only.
	UnitBase UnitKind = iota
	// UnitInTest is a package re-checked with its in-package test files
	// (pass 2). Only the test files report diagnostics.
	UnitInTest
	// UnitExTest is an external foo_test package (pass 3).
	UnitExTest
)

// Unit is one type-checked compilation unit: a package's non-test files, a
// package re-checked together with its in-package test files, or an
// external _test package. A file appears in at most one unit with Report
// set, so diagnostics are never duplicated across the base and test
// variants of a package.
type Unit struct {
	Dir     string // module-relative directory ("" for the root package)
	PkgPath string // import path
	Kind    UnitKind
	Files   []*File
	Pkg     *types.Package
	Info    *types.Info

	// ip is the module-wide interprocedural model, set on base units by
	// RunOpts; rules that can use call-graph facts fall back to purely
	// syntactic reasoning when it is nil (test units, bare Load calls).
	ip *interproc
}

// Module is a loaded, fully type-checked module.
type Module struct {
	Root  string // absolute path of the directory containing go.mod
	Path  string // module path from go.mod
	Fset  *token.FileSet
	Units []*Unit
}

// sharedFset and sharedSource back every Load in the process: the source
// importer memoizes type-checked stdlib packages, so loading several
// corpora (the golden tests) pays for net/http et al. only once.
var (
	sharedMu     sync.Mutex
	sharedFset   = token.NewFileSet()
	sharedSource types.ImporterFrom
)

// Load parses and type-checks the module rooted at root. Only directories
// below root are read; testdata, vendor, hidden and underscore directories,
// and nested modules are skipped, exactly like the go tool's ./... pattern.
func Load(root string) (*Module, error) {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	if sharedSource == nil {
		sharedSource = importer.ForCompiler(sharedFset, "source", nil).(types.ImporterFrom)
	}
	m := &Module{Root: abs, Path: modPath, Fset: sharedFset}

	dirs, err := sourceDirs(abs)
	if err != nil {
		return nil, err
	}
	var pkgs []*rawPkg
	for _, dir := range dirs {
		p, err := parseDir(m, dir)
		if err != nil {
			return nil, err
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}

	// Pass 1: type-check the non-test variant of every package in
	// dependency order, so each unit's imports resolve to already-checked
	// module packages (stdlib imports resolve from source via sharedSource).
	byPath := make(map[string]*rawPkg, len(pkgs))
	for _, p := range pkgs {
		byPath[m.pkgPath(p.dir)] = p
	}
	order, err := topoOrder(m, byPath)
	if err != nil {
		return nil, err
	}
	checked := make(map[string]*types.Package)
	imp := &moduleImporter{mod: m, pkgs: checked}
	for _, path := range order {
		p := byPath[path]
		if len(p.base) == 0 {
			continue // test-only directory
		}
		u, err := m.check(path, p.base, nil, imp)
		if err != nil {
			return nil, err
		}
		u.Kind = UnitBase
		checked[path] = u.Pkg
		m.Units = append(m.Units, u)
	}

	// Pass 2: re-check packages together with their in-package test files.
	// Test files may import packages that themselves import the base
	// package, so this must run after every base unit exists. Only the test
	// files report diagnostics (the base files already did in pass 1).
	inTestPkg := make(map[string]*types.Package)
	for _, path := range order {
		p := byPath[path]
		if len(p.inTest) == 0 {
			continue
		}
		var files []*File
		for _, f := range p.base {
			files = append(files, &File{Path: f.Path, AST: f.AST, Test: f.Test})
		}
		files = append(files, p.inTest...)
		u, err := m.check(path, files, nil, imp)
		if err != nil {
			return nil, err
		}
		u.Kind = UnitInTest
		inTestPkg[path] = u.Pkg
		m.Units = append(m.Units, u)
	}

	// Pass 3: external _test packages. The real build compiles foo_test
	// against the test variant of foo (and recompiles foo's dependents
	// against it, too); replicating that rebuild is not worth it for a
	// linter, so foo_test is checked against the base variant first and
	// against the test variant only when that fails (i.e. when it uses
	// helpers exported from in-package test files).
	for _, path := range order {
		p := byPath[path]
		if len(p.exTest) == 0 {
			continue
		}
		u, err := m.check(path+"_test", p.exTest, nil, imp)
		if err != nil && inTestPkg[path] != nil {
			u, err = m.check(path+"_test", p.exTest, map[string]*types.Package{path: inTestPkg[path]}, imp)
		}
		if err != nil {
			return nil, err
		}
		u.Kind = UnitExTest
		m.Units = append(m.Units, u)
	}
	return m, nil
}

// check type-checks one unit. overrides maps import paths to packages that
// take precedence over the already-checked base units.
func (m *Module) check(pkgPath string, files []*File, overrides map[string]*types.Package, imp *moduleImporter) (*Unit, error) {
	asts := make([]*ast.File, len(files))
	for i, f := range files {
		asts[i] = f.AST
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	cfg := types.Config{Importer: &moduleImporter{mod: m, pkgs: imp.pkgs, overrides: overrides}}
	pkg, err := cfg.Check(pkgPath, m.Fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", pkgPath, err)
	}
	dir := strings.TrimPrefix(strings.TrimPrefix(pkgPath, m.Path), "/")
	return &Unit{Dir: dir, PkgPath: pkgPath, Files: files, Pkg: pkg, Info: info}, nil
}

// moduleImporter resolves module-internal imports from the checked map and
// everything else (the standard library) from source.
type moduleImporter struct {
	mod       *Module
	pkgs      map[string]*types.Package
	overrides map[string]*types.Package
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	return mi.ImportFrom(path, "", 0)
}

func (mi *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := mi.overrides[path]; ok && p != nil {
		return p, nil
	}
	if path == mi.mod.Path || strings.HasPrefix(path, mi.mod.Path+"/") {
		if p, ok := mi.pkgs[path]; ok {
			return p, nil
		}
		return nil, fmt.Errorf("module package %s not yet checked (import cycle?)", path)
	}
	return sharedSource.ImportFrom(path, dir, mode)
}

// pkgPath maps a module-relative directory to an import path.
func (m *Module) pkgPath(dir string) string {
	if dir == "" || dir == "." {
		return m.Path
	}
	return m.Path + "/" + filepath.ToSlash(dir)
}

// rawPkg is the pre-check shape of one directory's files.
type rawPkg struct {
	dir                  string
	base, inTest, exTest []*File
	name                 string
}

// parseDir parses one directory's .go files into base / in-package-test /
// external-test groups. Returns nil when the directory has no Go files.
func parseDir(m *Module, rel string) (*rawPkg, error) {
	absDir := filepath.Join(m.Root, rel)
	ents, err := os.ReadDir(absDir)
	if err != nil {
		return nil, err
	}
	p := &rawPkg{dir: rel}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		relPath := filepath.Join(rel, name)
		af, err := parser.ParseFile(m.Fset, relPath, mustRead(filepath.Join(absDir, name)), parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		f := &File{Path: relPath, AST: af, Test: strings.HasSuffix(name, "_test.go")}
		switch {
		case !f.Test:
			f.Report = true
			p.base = append(p.base, f)
			p.name = af.Name.Name
		case strings.HasSuffix(af.Name.Name, "_test"):
			f.Report = true
			p.exTest = append(p.exTest, f)
		default:
			f.Report = true
			p.inTest = append(p.inTest, f)
		}
	}
	if len(p.base)+len(p.inTest)+len(p.exTest) == 0 {
		return nil, nil
	}
	return p, nil
}

func mustRead(path string) []byte {
	b, err := os.ReadFile(path)
	if err != nil {
		panic(err)
	}
	return b
}

// sourceDirs walks the module and returns every directory that may hold
// lintable Go files, module-relative, sorted.
func sourceDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root {
			if name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if rel == "." {
			rel = ""
		}
		dirs = append(dirs, rel)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// topoOrder sorts the module's package paths so every package follows all
// module-internal packages its non-test files import.
func topoOrder(m *Module, pkgs map[string]*rawPkg) ([]string, error) {
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	const (
		white = iota
		grey
		black
	)
	state := make(map[string]int, len(paths))
	var order []string
	var visit func(path string, stack []string) error
	visit = func(path string, stack []string) error {
		switch state[path] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("lint: import cycle: %s", strings.Join(append(stack, path), " -> "))
		}
		state[path] = grey
		p := pkgs[path]
		var deps []string
		for _, f := range p.base {
			for _, spec := range f.AST.Imports {
				ip, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if _, ok := pkgs[ip]; ok {
					deps = append(deps, ip)
				}
			}
		}
		sort.Strings(deps)
		for _, dep := range deps {
			if err := visit(dep, append(stack, path)); err != nil {
				return err
			}
		}
		state[path] = black
		order = append(order, path)
		return nil
	}
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %s is not a module root: %w", filepath.Dir(gomod), err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}
