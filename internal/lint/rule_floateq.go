package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// runFloatEq reports == / != between floating-point expressions. Exact
// float equality is almost always a rounding hazard; the deterministic
// tie-breaks this codebase does rely on (lexicographic incumbent
// comparison, pivot degeneracy checks) are deliberate bitwise checks and
// carry a //lint:allow floateq annotation explaining why. Comparisons
// against a literal 0 are exempt (sign/zero tests are exact), as are
// compile-time constant comparisons and _test.go files (bitwise-identity
// assertions are the point of the determinism tests).
func runFloatEq(u *Unit, f *File, rep reporter) {
	ast.Inspect(f.AST, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		xt, yt := u.Info.Types[be.X], u.Info.Types[be.Y]
		if !isFloat(xt.Type) && !isFloat(yt.Type) {
			return true
		}
		if xt.Value != nil && yt.Value != nil {
			return true // constant fold: decided at compile time
		}
		if isConstZero(xt) || isConstZero(yt) {
			return true
		}
		rep(be, "exact floating-point %s comparison: compare with a tolerance, or annotate the bitwise check with //lint:allow floateq <why>", be.Op)
		return true
	})
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConstZero(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		v, ok := constant.Float64Val(tv.Value)
		return ok && v == 0
	}
	return false
}
