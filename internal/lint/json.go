package lint

import (
	"encoding/json"
	"io"
)

// JSONDiagnostic is the stable machine-readable form of a Diagnostic, one
// object per line in `3sigma-lint -json` output. The schema is part of the
// CLI contract (DESIGN.md §10):
//
//	file    module-relative path, forward slashes
//	line    1-based line
//	col     1-based column
//	rule    catalog rule name (or "badallow")
//	fn      enclosing function, "Type.method" for methods; omitted at
//	        top level
//	chain   rule-specific context, omitted when empty: for lockorder the
//	        lock cycle (first lock repeated at the end); for lockedcall
//	        blocking findings the witness call path to the blocking site
//	message human-readable explanation (not stable; parse the fields
//	        above, not this)
//
// Objects are emitted in the analyzer's reporting order: file, line, col,
// rule — pinned by TestJSONGolden.
type JSONDiagnostic struct {
	File    string   `json:"file"`
	Line    int      `json:"line"`
	Col     int      `json:"col"`
	Rule    string   `json:"rule"`
	Fn      string   `json:"fn,omitempty"`
	Chain   []string `json:"chain,omitempty"`
	Message string   `json:"message"`
}

// WriteJSON renders diagnostics in the stable JSON-lines schema.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		jd := JSONDiagnostic{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Rule:    d.Rule,
			Fn:      d.Fn,
			Chain:   d.Chain,
			Message: d.Message,
		}
		if err := enc.Encode(jd); err != nil {
			return err
		}
	}
	return nil
}

// CountAllows loads the module and returns the number of well-formed
// //lint:allow directives in reportable files. scripts/ci.sh compares
// this against the committed suppression budget.
func CountAllows(root string) (int, error) {
	mod, err := Load(root)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, u := range mod.Units {
		for _, f := range u.Files {
			if !f.Report {
				continue
			}
			n += len(parseAllows(mod.Fset, f.AST).entries)
		}
	}
	return n, nil
}
