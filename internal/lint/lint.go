// Package lint is 3sigma-lint: a stdlib-only static analyzer that enforces
// the repository's determinism and concurrency invariants at compile time
// (DESIGN.md §10). The whole evaluation rests on bit-identical replay — the
// fault-determinism gate, the differential solver oracle, and the outcome
// digests all assume that no wall-clock read, global-RNG draw, or
// map-iteration-order dependence ever leaks into a scheduling decision.
// Before this package that contract was enforced only dynamically, by
// seeded-digest tests that can cover only the code paths they happen to
// exercise; lint makes it a property of the source.
//
// The analyzer loads the module with go/parser and type-checks it with
// go/types (stdlib packages are imported from source via go/importer, so no
// external dependencies are needed), then runs a fixed catalog of rules.
// Per-function rules:
//
//	detrange     ranging over a map in a deterministic package
//	wallclock    time.Now/Since/After/Until outside simulator/clock.go
//	globalrand   math/rand outside internal/stats
//	floateq      ==/!= between floating-point expressions
//	mutexcopy    a sync.Mutex/RWMutex copied by value
//	guardedfield a "// guarded by <mu>" field accessed without the lock
//	erraudit     a discarded error from the durability call set
//
// Interprocedural rules, built on a conservative module-wide call graph
// and mutex model (interproc.go):
//
//	lockorder    the lock-acquisition graph must be acyclic
//	lockedcall   *Locked calls hold their guard; no blocking under a hot mutex
//
// Every diagnostic is individually suppressible with a comment on the same
// line or the line above:
//
//	//lint:allow <rule> <reason>
//
// The reason is mandatory: an allow without one does not suppress anything
// and is itself reported (rule "badallow"), so every accepted exception in
// the tree carries a written justification. When the full catalog runs, an
// allow that suppressed nothing is reported as stale — suppression debt
// cannot silently outlive the finding it once justified.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: a named rule violated at a position. Fn is
// the enclosing function ("Type.method" for methods), when there is one.
// Chain is rule-specific context: the lock cycle for lockorder, the
// witness call path for lockedcall blocking findings.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
	Fn      string
	Chain   []string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// A rule inspects one reportable file of a type-checked unit and reports
// violations through the unit's reporter. Rules that declare testFiles
// false are not run on _test.go files (tests measure wall time, seed local
// RNGs, and assert bitwise identity on purpose; the concurrency rules still
// apply everywhere).
type rule struct {
	name      string
	doc       string
	testFiles bool
	run       func(u *Unit, f *File, rep reporter)
}

type reporter func(n ast.Node, format string, args ...interface{})

// A modRule runs once over the whole module's interprocedural model
// instead of file by file. Its reporter takes a raw position (suppression
// is resolved through the file owning that position) and an optional
// chain of context strings.
type modRule struct {
	name string
	doc  string
	run  func(ip *interproc, rep ipReporter)
}

type ipReporter func(pos token.Pos, chain []string, format string, args ...interface{})

// rules is the per-file catalog, in reporting order. badallow is not
// listed: it is emitted by the suppression pass itself and cannot be
// switched off.
var rules = []rule{
	{"detrange", "map iteration in a deterministic package must sort keys first", true, runDetRange},
	{"wallclock", "wall-clock reads are confined to simulator/clock.go", false, runWallClock},
	{"globalrand", "math/rand is confined to internal/stats", false, runGlobalRand},
	{"floateq", "no exact floating-point equality outside tests", false, runFloatEq},
	{"mutexcopy", "sync.Mutex/RWMutex must not be copied by value", true, runMutexCopy},
	{"guardedfield", "'guarded by' fields are only touched under their mutex", true, runGuardedField},
	{"erraudit", "durability-path error returns must not be discarded", false, runErrAudit},
}

// modRules is the interprocedural catalog. These rules see base (non-test)
// units only: the call graph spans the module through the shared
// types.Func objects of pass-1 type checking.
var modRules = []modRule{
	{"lockorder", "the lock-acquisition graph must be acyclic", runLockOrder},
	{"lockedcall", "*Locked calls hold their guard; no blocking under a hot mutex", runLockedCall},
}

// RuleNames returns the catalog names in reporting order (per-file rules,
// then interprocedural rules).
func RuleNames() []string {
	var out []string
	for _, r := range rules {
		out = append(out, r.name)
	}
	for _, r := range modRules {
		out = append(out, r.name)
	}
	return out
}

// knownRule reports whether name is a catalog rule (or badallow).
func knownRule(name string) bool {
	if name == "badallow" {
		return false // not suppressible, not selectable
	}
	for _, r := range rules {
		if r.name == name {
			return true
		}
	}
	for _, r := range modRules {
		if r.name == name {
			return true
		}
	}
	return false
}

// Options configures a lint run.
type Options struct {
	// Rules selects a subset of the catalog; nil or empty runs everything.
	// Stale-suppression detection only runs with the full catalog (a
	// partial run cannot tell an allow for an unselected rule from a dead
	// one).
	Rules []string
	// HotLocks are the hot-mutex patterns for lockedcall's blocking check.
	// A pattern matches a canonical lock key ("pkg.Type.field") exactly or
	// as a ".«pattern»" suffix, so "Service.mu" covers service.Service.mu.
	// Nil means DefaultHotLocks.
	HotLocks []string
}

// DefaultHotLocks is the default hot-mutex set: the Service's big lock,
// which every admission, cycle, and replication step serializes on.
var DefaultHotLocks = []string{"Service.mu"}

// Run loads the module rooted at root (the directory containing go.mod),
// runs the selected rules (nil or empty means all), applies //lint:allow
// suppressions, and returns the surviving diagnostics sorted by position.
// Load or type-check failures are returned as an error: a tree that does
// not compile cannot be certified deterministic.
func Run(root string, selected []string) ([]Diagnostic, error) {
	return RunOpts(root, Options{Rules: selected})
}

// RunOpts is Run with full configuration.
func RunOpts(root string, opts Options) ([]Diagnostic, error) {
	selected := opts.Rules
	for _, name := range selected {
		if !knownRule(name) {
			return nil, fmt.Errorf("lint: unknown rule %q (have %s)", name, strings.Join(RuleNames(), ", "))
		}
	}
	mod, err := Load(root)
	if err != nil {
		return nil, err
	}
	hot := opts.HotLocks
	if hot == nil {
		hot = DefaultHotLocks
	}
	ip := buildInterproc(mod, hot)
	for _, u := range mod.Units {
		if u.Kind == UnitBase {
			u.ip = ip
		}
	}

	type fctx struct {
		u      *Unit
		f      *File
		allows *allowSet
	}
	var ctxs []*fctx
	byFile := make(map[string]*fctx)
	for _, u := range mod.Units {
		for _, f := range u.Files {
			if !f.Report {
				continue
			}
			c := &fctx{u: u, f: f, allows: parseAllows(mod.Fset, f.AST)}
			ctxs = append(ctxs, c)
			byFile[f.Path] = c
		}
	}

	var diags []Diagnostic
	for _, c := range ctxs {
		diags = append(diags, c.allows.malformed...)
		for _, r := range rules {
			if c.f.Test && !r.testFiles {
				continue
			}
			if len(selected) > 0 && !contains(selected, r.name) {
				continue
			}
			rname, cc := r.name, c
			rep := func(n ast.Node, format string, args ...interface{}) {
				pos := mod.Fset.Position(n.Pos())
				if cc.allows.suppressed(rname, pos.Line) {
					return
				}
				diags = append(diags, Diagnostic{Pos: pos, Rule: rname,
					Message: fmt.Sprintf(format, args...), Fn: enclosingFunc(cc.f.AST, n.Pos())})
			}
			r.run(c.u, c.f, rep)
		}
	}

	for _, r := range modRules {
		if len(selected) > 0 && !contains(selected, r.name) {
			continue
		}
		rname := r.name
		rep := func(pos token.Pos, chain []string, format string, args ...interface{}) {
			p := mod.Fset.Position(pos)
			c := byFile[p.Filename]
			if c != nil && c.allows.suppressed(rname, p.Line) {
				return
			}
			var fn string
			if c != nil {
				fn = enclosingFunc(c.f.AST, pos)
			}
			diags = append(diags, Diagnostic{Pos: p, Rule: rname,
				Message: fmt.Sprintf(format, args...), Fn: fn, Chain: chain})
		}
		r.run(ip, rep)
	}

	// Stale-suppression pass: with the full catalog just run, any
	// well-formed allow that suppressed nothing is dead weight and gets
	// reported itself.
	if len(selected) == 0 {
		for _, c := range ctxs {
			diags = append(diags, c.allows.stale()...)
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags, nil
}

// enclosingFunc names the function declaration containing pos:
// "Type.method" for methods, the bare name for functions, "" at top level.
func enclosingFunc(file *ast.File, pos token.Pos) string {
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || pos < fd.Pos() || pos >= fd.End() {
			continue
		}
		if fd.Recv != nil && len(fd.Recv.List) > 0 {
			if t := recvTypeName(fd.Recv.List[0].Type); t != "" {
				return t + "." + fd.Name.Name
			}
		}
		return fd.Name.Name
	}
	return ""
}

// recvTypeName extracts the bare receiver type name from a receiver
// expression (strips pointers and type parameters).
func recvTypeName(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
