// Package lint is 3sigma-lint: a stdlib-only static analyzer that enforces
// the repository's determinism and concurrency invariants at compile time
// (DESIGN.md §10). The whole evaluation rests on bit-identical replay — the
// fault-determinism gate, the differential solver oracle, and the outcome
// digests all assume that no wall-clock read, global-RNG draw, or
// map-iteration-order dependence ever leaks into a scheduling decision.
// Before this package that contract was enforced only dynamically, by
// seeded-digest tests that can cover only the code paths they happen to
// exercise; lint makes it a property of the source.
//
// The analyzer loads the module with go/parser and type-checks it with
// go/types (stdlib packages are imported from source via go/importer, so no
// external dependencies are needed), then runs a fixed catalog of rules:
//
//	detrange     ranging over a map in a deterministic package
//	wallclock    time.Now/Since/After/Until outside simulator/clock.go
//	globalrand   math/rand outside internal/stats
//	floateq      ==/!= between floating-point expressions
//	mutexcopy    a sync.Mutex/RWMutex copied by value
//	guardedfield a "// guarded by <mu>" field accessed without the lock
//
// Every diagnostic is individually suppressible with a comment on the same
// line or the line above:
//
//	//lint:allow <rule> <reason>
//
// The reason is mandatory: an allow without one does not suppress anything
// and is itself reported (rule "badallow"), so every accepted exception in
// the tree carries a written justification.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: a named rule violated at a position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// A rule inspects one reportable file of a type-checked unit and reports
// violations through the unit's reporter. Rules that declare testFiles
// false are not run on _test.go files (tests measure wall time, seed local
// RNGs, and assert bitwise identity on purpose; the concurrency rules still
// apply everywhere).
type rule struct {
	name      string
	doc       string
	testFiles bool
	run       func(u *Unit, f *File, rep reporter)
}

type reporter func(n ast.Node, format string, args ...interface{})

// rules is the catalog, in reporting order. badallow is not listed: it is
// emitted by the suppression pass itself and cannot be switched off.
var rules = []rule{
	{"detrange", "map iteration in a deterministic package must sort keys first", true, runDetRange},
	{"wallclock", "wall-clock reads are confined to simulator/clock.go", false, runWallClock},
	{"globalrand", "math/rand is confined to internal/stats", false, runGlobalRand},
	{"floateq", "no exact floating-point equality outside tests", false, runFloatEq},
	{"mutexcopy", "sync.Mutex/RWMutex must not be copied by value", true, runMutexCopy},
	{"guardedfield", "'guarded by' fields are only touched under their mutex", true, runGuardedField},
}

// RuleNames returns the catalog names in reporting order.
func RuleNames() []string {
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = r.name
	}
	return out
}

// knownRule reports whether name is a catalog rule (or badallow).
func knownRule(name string) bool {
	if name == "badallow" {
		return false // not suppressible, not selectable
	}
	for _, r := range rules {
		if r.name == name {
			return true
		}
	}
	return false
}

// Run loads the module rooted at root (the directory containing go.mod),
// runs the selected rules (nil or empty means all), applies //lint:allow
// suppressions, and returns the surviving diagnostics sorted by position.
// Load or type-check failures are returned as an error: a tree that does
// not compile cannot be certified deterministic.
func Run(root string, selected []string) ([]Diagnostic, error) {
	for _, name := range selected {
		if !knownRule(name) {
			return nil, fmt.Errorf("lint: unknown rule %q (have %s)", name, strings.Join(RuleNames(), ", "))
		}
	}
	mod, err := Load(root)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, u := range mod.Units {
		for _, f := range u.Files {
			if !f.Report {
				continue
			}
			allows := parseAllows(mod.Fset, f.AST)
			for _, bad := range allows.malformed {
				diags = append(diags, bad)
			}
			for _, r := range rules {
				if f.Test && !r.testFiles {
					continue
				}
				if len(selected) > 0 && !contains(selected, r.name) {
					continue
				}
				rname := r.name
				rep := func(n ast.Node, format string, args ...interface{}) {
					pos := mod.Fset.Position(n.Pos())
					if allows.suppressed(rname, pos.Line) {
						return
					}
					diags = append(diags, Diagnostic{Pos: pos, Rule: rname, Message: fmt.Sprintf(format, args...)})
				}
				r.run(u, f, rep)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags, nil
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
