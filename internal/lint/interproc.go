package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide interprocedural model behind the
// lockorder, lockedcall, and upgraded guardedfield rules: a conservative
// static call graph plus a mutex model (which locks are held at every
// call, acquisition, field access, and potentially-blocking operation).
//
// The model is built over base units only (pass 1 of the loader): their
// types.Func objects are shared across packages, so a call from
// internal/service into internal/replog resolves to the same object the
// replog unit declared, and the graph spans the module. Test files are
// outside the model — a convention violation that only a test can trigger
// is the author's problem, not a deadlock in the shipped tree.
//
// Conservatism (the false-negative envelope, DESIGN.md §10): only static
// calls are edges — direct function calls and concrete-method calls.
// Calls through interfaces, stored func values, and reflection are opaque;
// a lock acquired behind one is invisible to lockorder. Held-set tracking
// is must-hold: a lock is held after a statement only if every
// non-terminating path through it holds the lock. Mutex identity is
// type-granular ("service.Service.mu" means the mu field of *any* Service
// value), which is exact for singletons like the Service but merges
// instances of per-connection locks; sequential per-instance Lock/Unlock
// loops stay precise because the walker sees the paired Unlock.

// A mutex key canonically names a lock: "pkg.Type.field" for struct
// fields, "pkg.var" for package-level variables, "local:name" for
// function-local mutexes (merged by name; locals never cross functions on
// the paths this analyzer reasons about).
type acqEvent struct {
	key   string
	kind  string   // Lock, RLock, TryLock, TryRLock
	held  []string // sorted held set immediately before the acquire
	again bool     // key was already held (re-entrant acquire)
	async bool     // inside a `go func(){...}` body
	pos   token.Pos
}

type callEvent struct {
	callee   *types.Func // static callee; nil when unresolved
	held     []string
	released []string // locks explicitly released on some path before this call
	isGo     bool     // `go f()` — runs without the caller's locks
	block    string   // non-empty: the call itself is a known blocking op
	async    bool
	pos      token.Pos
}

type blockEvent struct {
	what  string // "channel send", "channel receive", "range over channel"
	held  []string
	async bool
	pos   token.Pos
}

// fnNode is the per-function summary the interprocedural rules consume.
type fnNode struct {
	obj       *types.Func
	decl      *ast.FuncDecl
	unit      *Unit
	file      *File
	guardKey  string // resolved guard of a *Locked method ("" if none)
	guardName string // annotation-level guard field name ("mu")
	acquires  []acqEvent
	calls     []callEvent
	blocks    []blockEvent
	heldAt    map[*ast.SelectorExpr][]string // held set at each field access
}

func (fn *fnNode) isLocked() bool {
	return strings.HasSuffix(fn.decl.Name.Name, "Locked")
}

// name renders Type.method or pkg.func for messages.
func (fn *fnNode) name() string {
	if recv := fn.obj.Type().(*types.Signature).Recv(); recv != nil {
		if n := namedOf(recv.Type()); n != nil {
			return n.Obj().Name() + "." + fn.obj.Name()
		}
	}
	return fn.obj.Pkg().Name() + "." + fn.obj.Name()
}

type callSite struct {
	caller *fnNode
	ev     *callEvent
}

type acqWitness struct {
	pos  token.Pos
	path []string // function-name chain from the summarized function down
	kind string
}

type blockWitness struct {
	pos  token.Pos
	path []string
	what string
}

// interproc is the module-wide model.
type interproc struct {
	mod     *Module
	hot     []string // hot-mutex patterns ("Service.mu" matches any suffix)
	fns     map[*types.Func]*fnNode
	order   []*fnNode // deterministic (declaration) order
	callers map[*types.Func][]callSite

	transAcqMemo   map[*fnNode]map[string]*acqWitness
	transBlockMemo map[*fnNode]*blockWitness
	transBlockDone map[*fnNode]bool
}

// buildInterproc summarizes every function declared in a base unit and
// indexes the call graph. hot lists the hot-mutex patterns for the
// lockedcall blocking check.
func buildInterproc(mod *Module, hot []string) *interproc {
	ip := &interproc{
		mod:            mod,
		hot:            hot,
		fns:            make(map[*types.Func]*fnNode),
		callers:        make(map[*types.Func][]callSite),
		transAcqMemo:   make(map[*fnNode]map[string]*acqWitness),
		transBlockMemo: make(map[*fnNode]*blockWitness),
		transBlockDone: make(map[*fnNode]bool),
	}
	for _, u := range mod.Units {
		if u.Kind != UnitBase {
			continue
		}
		for _, f := range u.Files {
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn := &fnNode{obj: obj, decl: fd, unit: u, file: f,
					heldAt: make(map[*ast.SelectorExpr][]string)}
				fn.guardKey, fn.guardName = lockedGuard(u, fd)
				ip.fns[obj] = fn
				ip.order = append(ip.order, fn)
			}
		}
	}
	for _, fn := range ip.order {
		w := &hwalk{ip: ip, fn: fn}
		h := newHeldSet()
		if fn.isLocked() && fn.guardKey != "" {
			h.add(fn.guardKey)
		}
		w.stmt(fn.decl.Body, h)
	}
	for _, fn := range ip.order {
		for i := range fn.calls {
			ev := &fn.calls[i]
			if ev.callee != nil {
				ip.callers[ev.callee] = append(ip.callers[ev.callee], callSite{caller: fn, ev: ev})
			}
		}
	}
	return ip
}

func (ip *interproc) isHot(key string) bool {
	for _, pat := range ip.hot {
		if key == pat || strings.HasSuffix(key, "."+pat) {
			return true
		}
	}
	return false
}

// transAcquires returns the locks fn (or any same-goroutine callee,
// transitively) acquires, with one deterministic witness per lock.
// Asynchronous events (`go` bodies and `go` calls) are excluded: a caller's
// held locks are not held when the goroutine eventually runs.
func (ip *interproc) transAcquires(fn *fnNode, visiting map[*fnNode]bool) map[string]*acqWitness {
	if m, ok := ip.transAcqMemo[fn]; ok {
		return m
	}
	if visiting[fn] {
		return nil // recursion: the cycle's other entries supply the facts
	}
	visiting[fn] = true
	defer delete(visiting, fn)
	out := make(map[string]*acqWitness)
	for i := range fn.acquires {
		a := &fn.acquires[i]
		if a.async {
			continue
		}
		if _, ok := out[a.key]; !ok {
			out[a.key] = &acqWitness{pos: a.pos, path: []string{fn.name()}, kind: a.kind}
		}
	}
	for i := range fn.calls {
		ev := &fn.calls[i]
		if ev.async || ev.isGo || ev.callee == nil {
			continue
		}
		callee, ok := ip.fns[ev.callee]
		if !ok {
			continue
		}
		for key, w := range ip.transAcquires(callee, visiting) {
			if _, dup := out[key]; !dup {
				out[key] = &acqWitness{pos: w.pos, path: append([]string{fn.name()}, w.path...), kind: w.kind}
			}
		}
	}
	ip.transAcqMemo[fn] = out
	return out
}

// transBlocks returns a witness if fn (or a same-goroutine callee) can
// reach a known blocking operation, nil otherwise.
func (ip *interproc) transBlocks(fn *fnNode, visiting map[*fnNode]bool) *blockWitness {
	if ip.transBlockDone[fn] {
		return ip.transBlockMemo[fn]
	}
	if visiting[fn] {
		return nil
	}
	visiting[fn] = true
	defer delete(visiting, fn)
	var w *blockWitness
	for i := range fn.blocks {
		b := &fn.blocks[i]
		if b.async {
			continue
		}
		w = &blockWitness{pos: b.pos, path: []string{fn.name()}, what: b.what}
		break
	}
	if w == nil {
		for i := range fn.calls {
			ev := &fn.calls[i]
			if ev.async || ev.isGo {
				continue
			}
			if ev.block != "" {
				w = &blockWitness{pos: ev.pos, path: []string{fn.name()}, what: ev.block}
				break
			}
			if ev.callee != nil {
				if callee, ok := ip.fns[ev.callee]; ok {
					if cw := ip.transBlocks(callee, visiting); cw != nil {
						w = &blockWitness{pos: ev.pos, path: append([]string{fn.name()}, cw.path...), what: cw.what}
						break
					}
				}
			}
		}
	}
	ip.transBlockDone[fn] = true
	ip.transBlockMemo[fn] = w
	return w
}

// callersHold reports whether every call site of fn (transitively, when a
// caller inherits the obligation) holds the guard. Zero call sites, a `go`
// call, or recursion all fail: a guard we cannot prove held is not held.
func (ip *interproc) callersHold(fn *fnNode, key, name string, visited map[*fnNode]bool) bool {
	if visited[fn] {
		return false
	}
	visited[fn] = true
	sites := ip.callers[fn.obj]
	if len(sites) == 0 {
		return false
	}
	for _, cs := range sites {
		if cs.ev.isGo {
			return false
		}
		if heldMatches(cs.ev.held, key, name) {
			continue
		}
		if !ip.callersHold(cs.caller, key, name, visited) {
			return false
		}
	}
	return true
}

// heldMatches checks a held set against a guard. With a resolved key the
// match is exact; with only an annotation-level name (the guard lives on
// another struct, e.g. agentState fields guarded by the Service's mu) any
// held lock whose field name matches counts.
func heldMatches(held []string, key, name string) bool {
	if key != "" {
		for _, h := range held {
			if h == key {
				return true
			}
		}
		return false
	}
	if name == "" {
		return false
	}
	for _, h := range held {
		if strings.HasSuffix(h, "."+name) || h == "local:"+name {
			return true
		}
	}
	return false
}

// lockedGuard resolves the guard of a *Locked method: the receiver
// struct's field named "mu" when it is a mutex, else its unique
// mutex-typed field. Returns ("", "") for non-methods or receivers
// without a mutex field (the convention checks then degrade gracefully).
func lockedGuard(u *Unit, fd *ast.FuncDecl) (key, name string) {
	if !strings.HasSuffix(fd.Name.Name, "Locked") || fd.Recv == nil {
		return "", ""
	}
	obj, ok := u.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return "", ""
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", ""
	}
	named := namedOf(recv.Type())
	if named == nil {
		return "", ""
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return "", ""
	}
	var only string
	count := 0
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !isMutexType(f.Type()) {
			continue
		}
		if f.Name() == "mu" {
			return fieldKey(named, f.Name()), f.Name()
		}
		only, count = f.Name(), count+1
	}
	if count == 1 {
		return fieldKey(named, only), only
	}
	return "", ""
}

func fieldKey(named *types.Named, field string) string {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return named.Obj().Name() + "." + field
	}
	return pkg.Name() + "." + named.Obj().Name() + "." + field
}

func isMutexType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" &&
		(n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex")
}

// namedOf unwraps pointers and aliases down to the named type, nil if the
// type has no name (interfaces stay named; that is fine).
func namedOf(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x
		case *types.Alias:
			t = types.Unalias(x)
		default:
			return nil
		}
	}
}

// ---- held-set walker ----

// heldSet is a mutable must-hold lock set with a cached sorted snapshot.
// It also accumulates the locks explicitly released on the way here (rel),
// which distinguishes "never held" from "held by a caller but dropped".
// Snapshots are shared, never mutated in place.
type heldSet struct {
	m       map[string]bool
	rel     map[string]bool
	snap    []string
	relSnap []string
}

func newHeldSet() *heldSet {
	return &heldSet{m: make(map[string]bool), rel: make(map[string]bool)}
}

func (h *heldSet) add(k string) { h.m[k] = true; h.snap = nil }
func (h *heldSet) remove(k string) {
	delete(h.m, k)
	h.rel[k] = true
	h.snap, h.relSnap = nil, nil
}
func (h *heldSet) has(k string) bool {
	return h.m[k]
}

func (h *heldSet) copy() *heldSet {
	c := newHeldSet()
	for k := range h.m {
		c.m[k] = true
	}
	for k := range h.rel {
		c.rel[k] = true
	}
	return c
}

func (h *heldSet) setTo(o *heldSet) {
	h.m = make(map[string]bool, len(o.m))
	for k := range o.m {
		h.m[k] = true
	}
	for k := range o.rel {
		h.rel[k] = true
	}
	h.snap, h.relSnap = nil, nil
}

// intersectAll replaces h with the intersection of the given sets
// (must-hold merge at a control-flow join); releases union (a lock dropped
// on any path counts as dropped). An empty list leaves h as-is: every
// branch terminated, so the join is unreachable.
func (h *heldSet) intersectAll(outs []*heldSet) {
	if len(outs) == 0 {
		return
	}
	m := make(map[string]bool)
	for k := range outs[0].m {
		all := true
		for _, o := range outs[1:] {
			if !o.m[k] {
				all = false
				break
			}
		}
		if all {
			m[k] = true
		}
	}
	h.m = m
	for _, o := range outs {
		for k := range o.rel {
			h.rel[k] = true
		}
	}
	h.snap, h.relSnap = nil, nil
}

func (h *heldSet) snapshot() []string {
	if h.snap == nil {
		h.snap = make([]string, 0, len(h.m))
		for k := range h.m {
			h.snap = append(h.snap, k)
		}
		sort.Strings(h.snap)
	}
	return h.snap
}

func (h *heldSet) relSnapshot() []string {
	if h.relSnap == nil {
		h.relSnap = make([]string, 0, len(h.rel))
		for k := range h.rel {
			h.relSnap = append(h.relSnap, k)
		}
		sort.Strings(h.relSnap)
	}
	return h.relSnap
}

// hwalk performs the structured must-hold walk over one function body,
// recording acquire, call, blocking, and field-access events.
type hwalk struct {
	ip    *interproc
	fn    *fnNode
	async bool // inside a `go func(){...}` body
}

// stmt walks one statement, mutating h, and reports whether the statement
// terminates the enclosing path (return/branch/panic).
func (w *hwalk) stmt(s ast.Stmt, h *heldSet) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		return w.stmts(s.List, h)
	case *ast.ExprStmt:
		w.expr(s.X, h, false)
		return isPanic(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, h, false)
		}
		for _, e := range s.Lhs {
			w.expr(e, h, false)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, h, false)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.expr(s.X, h, false)
	case *ast.SendStmt:
		w.expr(s.Chan, h, false)
		w.expr(s.Value, h, false)
		w.block("channel send", s.Arrow, h)
	case *ast.GoStmt:
		w.goStmt(s, h)
	case *ast.DeferStmt:
		w.deferStmt(s, h)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, h, false)
		}
		return true
	case *ast.BranchStmt:
		return s.Tok != token.FALLTHROUGH
	case *ast.IfStmt:
		w.stmt(s.Init, h)
		w.expr(s.Cond, h, false)
		th := h.copy()
		t1 := w.stmt(s.Body, th)
		eh := h.copy()
		t2 := false
		if s.Else != nil {
			t2 = w.stmt(s.Else, eh)
		}
		switch {
		case t1 && t2:
			return true
		case t1:
			h.setTo(eh)
		case t2:
			h.setTo(th)
		default:
			h.intersectAll([]*heldSet{th, eh})
		}
	case *ast.ForStmt:
		w.stmt(s.Init, h)
		if s.Cond != nil {
			w.expr(s.Cond, h, false)
		}
		bh := h.copy()
		w.stmt(s.Body, bh)
		w.stmt(s.Post, bh)
		// zero iterations are possible: held after the loop is held before it
	case *ast.RangeStmt:
		w.expr(s.X, h, false)
		if t, ok := w.fn.unit.Info.Types[s.X]; ok {
			if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
				w.block("range over channel", s.Range, h)
			}
		}
		bh := h.copy()
		w.stmt(s.Body, bh)
	case *ast.SwitchStmt:
		w.stmt(s.Init, h)
		if s.Tag != nil {
			w.expr(s.Tag, h, false)
		}
		w.clauses(s.Body, h)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, h)
		w.stmt(s.Assign, h)
		w.clauses(s.Body, h)
	case *ast.SelectStmt:
		w.selectStmt(s, h)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, h)
	}
	return false
}

func (w *hwalk) stmts(list []ast.Stmt, h *heldSet) bool {
	for _, s := range list {
		if w.stmt(s, h) {
			return true
		}
	}
	return false
}

// clauses merges switch/type-switch cases: held after the switch is the
// intersection over non-terminating cases, plus the fall-past path when
// there is no default.
func (w *hwalk) clauses(body *ast.BlockStmt, h *heldSet) {
	var outs []*heldSet
	hasDefault := false
	for _, cs := range body.List {
		c, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if c.List == nil {
			hasDefault = true
		}
		ch := h.copy()
		for _, e := range c.List {
			w.expr(e, ch, false)
		}
		if !w.stmts(c.Body, ch) {
			outs = append(outs, ch)
		}
	}
	if !hasDefault {
		outs = append(outs, h.copy())
	}
	h.intersectAll(outs)
}

// selectStmt: a select with a default clause makes its comm operations
// non-blocking; without one, each comm op is an unbounded channel op.
func (w *hwalk) selectStmt(s *ast.SelectStmt, h *heldSet) {
	hasDefault := false
	for _, cs := range s.Body.List {
		if c, ok := cs.(*ast.CommClause); ok && c.Comm == nil {
			hasDefault = true
		}
	}
	var outs []*heldSet
	for _, cs := range s.Body.List {
		c, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		ch := h.copy()
		w.comm(c.Comm, ch, hasDefault)
		if !w.stmts(c.Body, ch) {
			outs = append(outs, ch)
		}
	}
	h.intersectAll(outs)
}

func (w *hwalk) comm(s ast.Stmt, h *heldSet, nonblocking bool) {
	switch s := s.(type) {
	case nil:
	case *ast.SendStmt:
		w.expr(s.Chan, h, true)
		w.expr(s.Value, h, true)
		if !nonblocking {
			w.block("channel send", s.Arrow, h)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, h, nonblocking)
		}
		for _, e := range s.Lhs {
			w.expr(e, h, nonblocking)
		}
	case *ast.ExprStmt:
		w.expr(s.X, h, nonblocking)
	}
}

// goStmt: the launched function runs without the caller's locks. A `go`
// call is recorded with an empty held set (so a `go s.fooLocked()` is a
// convention violation); a `go func(){...}` body is walked as a fresh
// asynchronous context.
func (w *hwalk) goStmt(s *ast.GoStmt, h *heldSet) {
	for _, a := range s.Call.Args {
		w.expr(a, h, false)
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		prev := w.async
		w.async = true
		w.stmt(lit.Body, newHeldSet())
		w.async = prev
		return
	}
	if callee := calleeOf(w.fn.unit, s.Call); callee != nil {
		w.fn.calls = append(w.fn.calls, callEvent{
			callee: callee, held: nil, isGo: true, async: w.async, pos: s.Call.Pos()})
	}
}

// deferStmt: deferred work runs at function exit, where the held set at
// registration time is meaningless; it is modeled with an empty held set.
// A deferred Unlock deliberately does not release during the walk (the
// lock stays held for the remainder of the body), and a deferred Lock is
// ignored.
func (w *hwalk) deferStmt(s *ast.DeferStmt, h *heldSet) {
	for _, a := range s.Call.Args {
		w.expr(a, h, false)
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		w.stmt(lit.Body, newHeldSet())
		return
	}
	if op, _ := lockOp(w.fn.unit, s.Call); op != "" {
		return
	}
	if callee := calleeOf(w.fn.unit, s.Call); callee != nil {
		w.fn.calls = append(w.fn.calls, callEvent{
			callee: callee, held: nil, async: w.async, pos: s.Call.Pos()})
	}
}

// expr scans an expression in evaluation-ish order, handling lock
// operations, static calls, blocking channel receives, closures, and
// field accesses. nonblocking suppresses the channel-receive event (the
// expression is a select comm with a default).
func (w *hwalk) expr(e ast.Expr, h *heldSet, nonblocking bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure inherits the current held set: unsound for closures
			// that escape and run later, consistent with guardedfield's
			// long-standing convention. Lock state changes inside it do not
			// leak out.
			w.stmt(n.Body, h.copy())
			return false
		case *ast.CallExpr:
			w.callExpr(n, h)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !nonblocking {
				w.block("channel receive", n.OpPos, h)
			}
		case *ast.SelectorExpr:
			w.recordSel(n, h)
		}
		return true
	})
}

func (w *hwalk) callExpr(call *ast.CallExpr, h *heldSet) {
	// Type conversions are not calls.
	if tv, ok := w.fn.unit.Info.Types[call.Fun]; ok && tv.IsType() {
		for _, a := range call.Args {
			w.expr(a, h, false)
		}
		return
	}
	if op, recv := lockOp(w.fn.unit, call); op != "" {
		key := w.mutexKey(recv)
		w.expr(call.Fun, h, false) // record the receiver chain's field accesses
		if key == "" {
			return
		}
		switch op {
		case "Unlock", "RUnlock":
			h.remove(key)
		default:
			w.fn.acquires = append(w.fn.acquires, acqEvent{
				key: key, kind: op, held: h.snapshot(), again: h.has(key),
				async: w.async, pos: call.Pos()})
			h.add(key)
		}
		return
	}
	// Scan receiver chain and arguments first (their field accesses and
	// nested calls happen before the call itself).
	w.expr(call.Fun, h, false)
	for _, a := range call.Args {
		w.expr(a, h, false)
	}
	callee := calleeOf(w.fn.unit, call)
	ev := callEvent{callee: callee, held: h.snapshot(), released: h.relSnapshot(),
		async: w.async, pos: call.Pos()}
	ev.block = blockingCall(w.fn.unit, call, callee)
	if callee != nil || ev.block != "" {
		w.fn.calls = append(w.fn.calls, ev)
	}
}

func (w *hwalk) block(what string, pos token.Pos, h *heldSet) {
	w.fn.blocks = append(w.fn.blocks, blockEvent{
		what: what, held: h.snapshot(), async: w.async, pos: pos})
}

func (w *hwalk) recordSel(sel *ast.SelectorExpr, h *heldSet) {
	if s, ok := w.fn.unit.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		w.fn.heldAt[sel] = h.snapshot()
	}
}

// mutexKey canonicalizes the receiver expression of a Lock/Unlock call.
func (w *hwalk) mutexKey(e ast.Expr) string {
	u := w.fn.unit
	e = ast.Unparen(e)
	if st, ok := e.(*ast.StarExpr); ok {
		e = ast.Unparen(st.X)
	}
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if s, ok := u.Info.Selections[x]; ok && s.Kind() == types.FieldVal {
			v, _ := s.Obj().(*types.Var)
			if v == nil {
				return ""
			}
			if named := namedOf(s.Recv()); named != nil {
				return fieldKey(named, v.Name())
			}
			return "local:" + v.Name()
		}
		// qualified package-level var: pkg.Mu
		if obj, ok := u.Info.Uses[x.Sel].(*types.Var); ok && obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + obj.Name()
		}
	case *ast.Ident:
		obj, ok := u.Info.Uses[x].(*types.Var)
		if !ok {
			return ""
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Name() + "." + obj.Name()
		}
		return "local:" + obj.Name()
	}
	return ""
}

// lockOp classifies call as a sync.Mutex/RWMutex (un)lock. Returns the
// method name and the mutex-valued receiver expression, or ("", nil).
// Promoted (embedded) mutex methods resolve too: the receiver expression
// is then the embedding struct, which mutexKey names by its own type.
func lockOp(u *Unit, call *ast.CallExpr) (string, ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
	default:
		return "", nil
	}
	s, ok := u.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", nil
	}
	f, ok := s.Obj().(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", nil
	}
	return sel.Sel.Name, ast.Unparen(sel.X)
}

// calleeOf resolves a call expression to its static callee: a direct
// function call or a concrete-method call. Interface methods, func
// values, and builtins yield nil.
func calleeOf(u *Unit, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := u.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if s, ok := u.Info.Selections[fun]; ok {
			if s.Kind() == types.MethodVal {
				if f, ok := s.Obj().(*types.Func); ok {
					return f
				}
			}
			return nil
		}
		// qualified identifier: pkg.Func
		if f, ok := u.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// blockingCall classifies a call as a known blocking operation: fsync
// (any niladic error-returning Sync, which covers *os.File and the
// replog logFile seam), net/http round trips, and time.Sleep.
func blockingCall(u *Unit, call *ast.CallExpr, callee *types.Func) string {
	var obj *types.Func
	if callee != nil {
		obj = callee
	} else if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := u.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			obj, _ = s.Obj().(*types.Func)
		}
	}
	if obj == nil {
		return ""
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if obj.Name() == "Sync" && sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
		types.Identical(sig.Results().At(0).Type(), types.Universe.Lookup("error").Type()) {
		return "Sync (fsync)"
	}
	pkg := obj.Pkg()
	if pkg == nil {
		return ""
	}
	switch pkg.Path() {
	case "time":
		if obj.Name() == "Sleep" {
			return "time.Sleep"
		}
	case "net/http":
		switch obj.Name() {
		case "Do", "Get", "Post", "PostForm", "Head":
			return "net/http request"
		}
	}
	return ""
}

func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
