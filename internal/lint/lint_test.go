package lint

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// golden cases: each corpus under testdata/ is a self-contained module.
// rules nil means "run everything", which the suppression corpus uses to
// prove that only the relevant diagnostics survive.
var goldenCases = []struct {
	dir   string
	rules []string
}{
	{"detrange", []string{"detrange"}},
	{"wallclock", []string{"wallclock"}},
	{"globalrand", []string{"globalrand"}},
	{"floateq", []string{"floateq"}},
	{"mutexcopy", []string{"mutexcopy"}},
	{"guardedfield", []string{"guardedfield"}},
	{"erraudit", []string{"erraudit"}},
	{"lockorder", []string{"lockorder"}},
	{"lockedcall", []string{"lockedcall"}},
	{"suppress", nil},
}

func TestGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.dir, func(t *testing.T) {
			root := filepath.Join("testdata", tc.dir)
			diags, err := Run(root, tc.rules)
			if err != nil {
				t.Fatalf("Run(%s): %v", root, err)
			}
			// Diagnostic filenames are recorded relative to the module root
			// passed to Run, so they are already stable golden keys.
			var buf bytes.Buffer
			for _, d := range diags {
				fmt.Fprintf(&buf, "%s:%d:%d: %s: %s\n",
					filepath.ToSlash(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
			}
			goldenPath := filepath.Join(root, "expect.golden")
			if *update {
				if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("diagnostics differ from %s\n--- got ---\n%s--- want ---\n%s",
					goldenPath, buf.Bytes(), want)
			}
		})
	}
}

// TestGoldenPositives guards against the analyzer silently going blind: every
// rule corpus must produce at least one diagnostic of its own rule.
func TestGoldenPositives(t *testing.T) {
	for _, tc := range goldenCases {
		if tc.rules == nil {
			continue
		}
		rule := tc.rules[0]
		diags, err := Run(filepath.Join("testdata", tc.dir), tc.rules)
		if err != nil {
			t.Fatalf("Run(%s): %v", tc.dir, err)
		}
		found := false
		for _, d := range diags {
			if d.Rule == rule {
				found = true
			} else {
				t.Errorf("%s corpus: unexpected rule %s at %s", tc.dir, d.Rule, d.Pos)
			}
		}
		if !found {
			t.Errorf("%s corpus produced no %s diagnostics; positive cases lost", tc.dir, rule)
		}
	}
}

// TestSuppressionSemantics spells out the contract the suppress corpus
// encodes: a reasoned allow swallows the diagnostic, a reason-less or
// unknown-rule allow is itself reported and suppresses nothing.
func TestSuppressionSemantics(t *testing.T) {
	diags, err := Run(filepath.Join("testdata", "suppress"), nil)
	if err != nil {
		t.Fatal(err)
	}
	byRule := map[string]int{}
	for _, d := range diags {
		byRule[d.Rule]++
	}
	// Missing reason + unknown rule, plus two stale-but-well-formed allows
	// (WrongLine's misplaced allow and Stale's never-matching one) that the
	// full-catalog run reports as dead suppressions.
	if byRule["badallow"] != 4 {
		t.Errorf("badallow count = %d, want 4 (missing reason, unknown rule, two stale)", byRule["badallow"])
	}
	// NoReason, UnknownRule and WrongLine each still leak their wallclock
	// diagnostic; only Allowed is suppressed.
	if byRule["wallclock"] != 3 {
		t.Errorf("wallclock count = %d, want 3 (one per failed suppression)", byRule["wallclock"])
	}
}

// TestRepoIsClean lints the real module. Any unsuppressed diagnostic in the
// tree is a test failure, which is what makes the gate bite during `go test`
// as well as in CI.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	diags, err := Run(filepath.Join("..", ".."), nil)
	if err != nil {
		t.Fatalf("Run(repo root): %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func TestRuleNamesStable(t *testing.T) {
	want := []string{"detrange", "wallclock", "globalrand", "floateq", "mutexcopy",
		"guardedfield", "erraudit", "lockorder", "lockedcall"}
	got := RuleNames()
	if len(got) != len(want) {
		t.Fatalf("RuleNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RuleNames() = %v, want %v", got, want)
		}
	}
}

// TestJSONGolden pins the -json output schema and its ordering for a corpus
// with rule-specific context (lockorder's Chain): file, line, col, rule —
// the fields CI consumers are allowed to parse.
func TestJSONGolden(t *testing.T) {
	root := filepath.Join("testdata", "lockorder")
	diags, err := Run(root, []string{"lockorder"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join(root, "expect.json")
	if *update {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON output differs from %s\n--- got ---\n%s--- want ---\n%s",
			goldenPath, buf.Bytes(), want)
	}
}
