package lint

import (
	"strconv"
	"strings"
)

// runGlobalRand reports importing math/rand (or math/rand/v2) outside
// internal/stats. All scheduler randomness must flow through the seeded
// sources in internal/stats so a run is a pure function of its seed; even
// a locally-seeded rand.New elsewhere fragments the seed discipline.
func runGlobalRand(u *Unit, f *File, rep reporter) {
	if strings.HasSuffix(strings.TrimSuffix(u.PkgPath, "_test"), "internal/stats") {
		return
	}
	for _, spec := range f.AST.Imports {
		path, err := strconv.Unquote(spec.Path.Value)
		if err != nil {
			continue
		}
		if path == "math/rand" || path == "math/rand/v2" {
			rep(spec, "import of %s outside internal/stats: draw randomness from a seeded internal/stats source so runs are reproducible from the seed alone", path)
		}
	}
}
