package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// guardedByRe extracts the mutex name from a field's "// guarded by <mu>"
// annotation (doc comment or end-of-line comment; extra prose after the
// name is fine: "guarded by mu; see loop()").
var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// runGuardedField enforces field-level lock annotations: a read or write of
// a struct field annotated "// guarded by <mu>" is reported when no
// enclosing function (or closure) acquires <mu>. Acquisition is detected
// syntactically — a call to <path>.<mu>.Lock / RLock / TryLock / TryRLock
// anywhere in the function body, regardless of control flow.
//
// When the interprocedural model is available (base units under RunOpts),
// guard facts additionally flow through call chains: an access is fine
// when the must-hold set at the access point contains the guard (which a
// *Locked method's entry fact provides), or when every transitive call
// site of the enclosing function provably holds it — and a *Locked method
// is only exempt for its *own* guard, not for arbitrary mutexes. Without
// the model (test files), any function named *Locked is exempt wholesale,
// the pre-interprocedural behavior.
func runGuardedField(u *Unit, f *File, rep reporter) {
	guarded := collectGuarded(u)
	if len(guarded) == 0 {
		return
	}
	// stack tracks the enclosing FuncDecl/FuncLit chain; lockedBy caches,
	// per function node, the set of mutex names its body acquires.
	lockedBy := make(map[ast.Node]map[string]bool)
	var stack []ast.Node
	var inspect func(n ast.Node)
	inspect = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				stack = append(stack, n)
				if lockedBy[n] == nil {
					lockedBy[n] = acquiredMutexes(n)
				}
				// Walk the body with the stack in place, then pop.
				for _, child := range children(n) {
					inspect(child)
				}
				stack = stack[:len(stack)-1]
				return false
			case *ast.SelectorExpr:
				sel := n.(*ast.SelectorExpr)
				s, ok := u.Info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					return true
				}
				v, ok := s.Obj().(*types.Var)
				if !ok {
					return true
				}
				mu, isGuarded := guarded[v]
				if !isGuarded {
					return true
				}
				if holdsLock(stack, lockedBy, mu) {
					return true
				}
				if u.ip == nil {
					// No interprocedural facts: the historical blanket
					// *Locked exemption.
					if funcNameLocked(stack) {
						return true
					}
				} else if guardFlowsHere(u, sel, s, mu, stack) {
					return true
				}
				rep(sel, "field %s is guarded by %s, but no enclosing function locks it (suffix the function name with Locked if the caller holds it, or annotate //lint:allow guardedfield <why>)", v.Name(), mu)
				return true
			}
			return true
		})
	}
	inspect(f.AST)
}

// guardFlowsHere consults the interprocedural model: does the guard reach
// this access — via the must-hold set at the selector (a *Locked method's
// entry fact, or a structured lock/unlock flow the syntactic check is too
// coarse for), or because every transitive call site of the enclosing
// function holds it?
func guardFlowsHere(u *Unit, sel *ast.SelectorExpr, s *types.Selection, mu string, stack []ast.Node) bool {
	fd := innermostDecl(stack)
	if fd == nil {
		return false
	}
	obj, ok := u.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	fn, ok := u.ip.fns[obj]
	if !ok {
		return false
	}
	// Strict guard key when the accessed struct owns a mutex field named
	// <mu>; otherwise the guard lives elsewhere (e.g. agentState fields
	// guarded by the Service's mu) and matching degrades to the field name.
	key := guardKeyFor(namedOf(s.Recv()), mu)
	if held, ok := fn.heldAt[sel]; ok && heldMatches(held, key, mu) {
		return true
	}
	if fn.isLocked() {
		if fn.guardKey == "" {
			return true // unresolvable guard: cannot reason, keep the old exemption
		}
		if key != "" && fn.guardKey == key {
			return true
		}
		if key == "" && fn.guardName == mu {
			return true
		}
	}
	return u.ip.callersHold(fn, key, mu, make(map[*fnNode]bool))
}

// guardKeyFor resolves the canonical key of a guard annotation: non-empty
// only when the accessed struct itself has a mutex field with that name.
func guardKeyFor(named *types.Named, mu string) string {
	if named == nil {
		return ""
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		if fld.Name() == mu && isMutexType(fld.Type()) {
			return fieldKey(named, mu)
		}
	}
	return ""
}

// innermostDecl returns the innermost named FuncDecl on the stack.
func innermostDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// children returns the traversal roots of a function node: its body (and,
// for completeness, nothing else — signatures cannot touch fields).
func children(n ast.Node) []ast.Node {
	switch n := n.(type) {
	case *ast.FuncDecl:
		if n.Body != nil {
			return []ast.Node{n.Body}
		}
	case *ast.FuncLit:
		if n.Body != nil {
			return []ast.Node{n.Body}
		}
	}
	return nil
}

// funcNameLocked reports whether the innermost named enclosing function
// follows the *Locked caller-holds-the-lock convention.
func funcNameLocked(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return strings.HasSuffix(fd.Name.Name, "Locked")
		}
	}
	return false
}

// holdsLock reports whether any enclosing function acquires mu. A closure
// defined inside a locked region is treated as locked: that is unsound for
// closures that escape and run later, but those are exactly the sites a
// human should justify with an explicit annotation after review.
func holdsLock(stack []ast.Node, lockedBy map[ast.Node]map[string]bool, mu string) bool {
	for _, fn := range stack {
		if lockedBy[fn][mu] {
			return true
		}
	}
	return false
}

// acquiredMutexes scans a function body for lock acquisitions and returns
// the set of mutex names acquired (the last selector component before
// .Lock/.RLock/...: both `s.mu.Lock()` and `mu.Lock()` yield "mu").
func acquiredMutexes(fn ast.Node) map[string]bool {
	out := make(map[string]bool)
	body := children(fn)
	if body == nil {
		return out
	}
	ast.Inspect(body[0], func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "TryLock", "TryRLock":
		default:
			return true
		}
		switch x := ast.Unparen(sel.X).(type) {
		case *ast.Ident:
			out[x.Name] = true
		case *ast.SelectorExpr:
			out[x.Sel.Name] = true
		}
		return true
	})
	return out
}

// collectGuarded finds every struct field in the unit carrying a
// "guarded by <mu>" annotation and maps its types.Var to the mutex name.
func collectGuarded(u *Unit) map[*types.Var]string {
	out := make(map[*types.Var]string)
	for _, f := range u.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fd := range st.Fields.List {
				mu := annotationMutex(fd)
				if mu == "" {
					continue
				}
				for _, name := range fd.Names {
					if v, ok := u.Info.Defs[name].(*types.Var); ok {
						out[v] = mu
					}
				}
			}
			return true
		})
	}
	return out
}

// annotationMutex extracts the guarded-by mutex name from a struct field's
// doc or line comment ("" when unannotated).
func annotationMutex(fd *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fd.Doc, fd.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}
