package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// An allowSet holds the //lint:allow comments of one file. An allow on line
// L suppresses matching diagnostics on L (end-of-line comment) and L+1
// (comment on its own line above the statement). Allows without a reason
// never suppress; they are returned as badallow diagnostics so that every
// accepted exception carries a written justification.
type allowSet struct {
	byLine    map[int][]string // line -> rule names allowed there
	malformed []Diagnostic
}

func (a *allowSet) suppressed(rule string, line int) bool {
	for _, l := range []int{line, line - 1} {
		for _, r := range a.byLine[l] {
			if r == rule {
				return true
			}
		}
	}
	return false
}

// parseAllows scans a file's comments for lint:allow directives.
func parseAllows(fset *token.FileSet, f *ast.File) *allowSet {
	a := &allowSet{byLine: make(map[int][]string)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/"), " ")
			rest, ok := strings.CutPrefix(strings.TrimSpace(text), "lint:allow")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(rest)
			switch {
			case len(fields) == 0:
				a.malformed = append(a.malformed, Diagnostic{Pos: pos, Rule: "badallow",
					Message: "lint:allow needs a rule and a reason: //lint:allow <rule> <why>"})
			case !knownRule(fields[0]):
				a.malformed = append(a.malformed, Diagnostic{Pos: pos, Rule: "badallow",
					Message: "lint:allow names unknown rule " + quote(fields[0])})
			case len(fields) == 1:
				a.malformed = append(a.malformed, Diagnostic{Pos: pos, Rule: "badallow",
					Message: "lint:allow " + fields[0] + " needs a written reason; the suppression is ignored"})
			default:
				a.byLine[pos.Line] = append(a.byLine[pos.Line], fields[0])
			}
		}
	}
	return a
}

func quote(s string) string { return `"` + s + `"` }
