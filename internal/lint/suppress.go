package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// An allowEntry is one well-formed //lint:allow directive. used flips when
// the entry suppresses a diagnostic; an entry left unused after a
// full-catalog run is stale and reported itself.
type allowEntry struct {
	rule string
	used bool
	pos  token.Position
}

// An allowSet holds the //lint:allow comments of one file. An allow on line
// L suppresses matching diagnostics on L (end-of-line comment) and L+1
// (comment on its own line above the statement). Allows without a reason
// never suppress; they are returned as badallow diagnostics so that every
// accepted exception carries a written justification.
type allowSet struct {
	byLine    map[int][]*allowEntry // line -> allows declared there
	entries   []*allowEntry         // declaration order, for the stale pass
	malformed []Diagnostic
}

func (a *allowSet) suppressed(rule string, line int) bool {
	for _, l := range []int{line, line - 1} {
		for _, e := range a.byLine[l] {
			if e.rule == rule {
				e.used = true
				return true
			}
		}
	}
	return false
}

// stale returns a badallow diagnostic for every well-formed allow that
// suppressed nothing. Only meaningful after the full catalog ran.
func (a *allowSet) stale() []Diagnostic {
	var out []Diagnostic
	for _, e := range a.entries {
		if !e.used {
			out = append(out, Diagnostic{Pos: e.pos, Rule: "badallow",
				Message: "lint:allow " + e.rule + " suppresses nothing (stale); delete it"})
		}
	}
	return out
}

// parseAllows scans a file's comments for lint:allow directives.
func parseAllows(fset *token.FileSet, f *ast.File) *allowSet {
	a := &allowSet{byLine: make(map[int][]*allowEntry)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/"), " ")
			rest, ok := strings.CutPrefix(strings.TrimSpace(text), "lint:allow")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(rest)
			switch {
			case len(fields) == 0:
				a.malformed = append(a.malformed, Diagnostic{Pos: pos, Rule: "badallow",
					Message: "lint:allow needs a rule and a reason: //lint:allow <rule> <why>"})
			case !knownRule(fields[0]):
				a.malformed = append(a.malformed, Diagnostic{Pos: pos, Rule: "badallow",
					Message: "lint:allow names unknown rule " + quote(fields[0])})
			case len(fields) == 1:
				a.malformed = append(a.malformed, Diagnostic{Pos: pos, Rule: "badallow",
					Message: "lint:allow " + fields[0] + " needs a written reason; the suppression is ignored"})
			default:
				e := &allowEntry{rule: fields[0], pos: pos}
				a.byLine[pos.Line] = append(a.byLine[pos.Line], e)
				a.entries = append(a.entries, e)
			}
		}
	}
	return a
}

func quote(s string) string { return `"` + s + `"` }
