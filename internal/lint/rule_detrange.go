package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// deterministicPkgs are the package names whose code feeds scheduling
// decisions and therefore the outcome digests: any map iteration there
// observes Go's randomized map order unless the keys are sorted first.
var deterministicPkgs = map[string]bool{
	"core":      true,
	"milp":      true,
	"simulator": true,
	"faults":    true,
	"predictor": true,
	// The control plane replays cycles bitwise-identically on replicas:
	// iteration order there is as outcome-bearing as in the solver.
	"agent":  true,
	"replog": true,
}

// runDetRange reports ranging over a map inside a deterministic package,
// unless the loop only collects keys/values into a slice (the sort-keys
// idiom's first half) or only counts entries — the two body shapes whose
// result is independent of iteration order.
func runDetRange(u *Unit, f *File, rep reporter) {
	seg := u.PkgPath
	if i := strings.LastIndex(seg, "/"); i >= 0 {
		seg = seg[i+1:]
	}
	if !deterministicPkgs[strings.TrimSuffix(seg, "_test")] {
		return
	}
	ast.Inspect(f.AST, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := u.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if orderIndependentBody(rng) {
			return true
		}
		rep(rng, "iterating a map (%s) in deterministic package %s: collect the keys, sort, then index — map order is randomized per run", types.TypeString(t, types.RelativeTo(u.Pkg)), seg)
		return true
	})
}

// orderIndependentBody reports whether a range-over-map body cannot observe
// the iteration order: every statement is either an append into a slice
// (key collection before sorting) or, when neither key nor value is bound,
// a bare counter increment.
func orderIndependentBody(rng *ast.RangeStmt) bool {
	if len(rng.Body.List) == 0 {
		return true
	}
	for _, st := range rng.Body.List {
		switch s := st.(type) {
		case *ast.AssignStmt:
			if len(s.Rhs) != 1 {
				return false
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok {
				return false
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "append" {
				return false
			}
		case *ast.IncDecStmt:
			if boundVar(rng.Key) || boundVar(rng.Value) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// boundVar reports whether a range clause expression binds a usable
// variable (i.e. is present and not the blank identifier).
func boundVar(e ast.Expr) bool {
	if e == nil {
		return false
	}
	id, ok := e.(*ast.Ident)
	return !ok || id.Name != "_"
}
