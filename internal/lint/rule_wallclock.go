package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// wallClockFuncs are the package time entry points that read the host's
// real clock. Reading them anywhere but simulator/clock.go lets host load
// leak into scheduling decisions; everything else must take time from an
// injected simulator.Clock (or an injected now func) so virtual-time runs
// are bit-identical.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"After": true,
	"Until": true,
}

// runWallClock reports uses of time.Now / time.Since / time.After /
// time.Until outside simulator/clock.go. Both calls and uses as a value
// (e.g. `opts.Now = time.Now`) are reported.
func runWallClock(u *Unit, f *File, rep reporter) {
	if filepath.Base(f.Path) == "clock.go" && strings.HasSuffix(strings.TrimSuffix(u.PkgPath, "_test"), "simulator") {
		return
	}
	ast.Inspect(f.AST, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := u.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallClockFuncs[fn.Name()] {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true // a method like Time.After, not the package function
		}
		rep(sel, "time.%s reads the wall clock: route time through the injected Clock (simulator.Clock / Options.Now) so virtual-time runs stay deterministic", fn.Name())
		return true
	})
}
