package lint

import (
	"go/token"
	"strings"
)

// runLockedCall enforces the *Locked naming convention interprocedurally
// and polices blocking work under a hot mutex:
//
//  1. every static call to a fooLocked method happens with its guard held
//     (directly, via the caller's own *Locked entry fact, or because every
//     transitive call site provably holds it) — and `go s.fooLocked()` is
//     always wrong, the goroutine does not inherit the caller's locks;
//  2. a *Locked method never (R)Locks its own guard: the caller already
//     holds it and Go mutexes are non-reentrant;
//  3. no blocking operation (fsync, net/http round trip, time.Sleep,
//     unbounded channel op) runs while a configured hot mutex is held,
//     following call chains — the hot lock serializes the control plane,
//     so anything slow under it stalls every admission and cycle.
func runLockedCall(ip *interproc, rep ipReporter) {
	for _, fn := range ip.order {
		for i := range fn.calls {
			ev := &fn.calls[i]
			if ev.callee == nil {
				continue
			}
			callee, ok := ip.fns[ev.callee]
			if !ok || !callee.isLocked() || callee.guardKey == "" {
				continue
			}
			if ev.isGo {
				rep(ev.pos, nil,
					"go %s: the goroutine does not inherit %s, which %s requires held at entry",
					callee.name(), callee.guardKey, callee.name())
				continue
			}
			if heldMatches(ev.held, callee.guardKey, callee.guardName) {
				continue
			}
			// The caller may be Locked-by-contract without the suffix: every
			// transitive call site holds the guard and this function never
			// dropped it on the way here.
			if !heldMatches(ev.released, callee.guardKey, callee.guardName) &&
				ip.callersHold(fn, callee.guardKey, callee.guardName, make(map[*fnNode]bool)) {
				continue
			}
			rep(ev.pos, nil,
				"%s calls %s without holding %s (hold the guard on every path to this call, suffix the caller with Locked, or annotate //lint:allow lockedcall <why>)",
				fn.name(), callee.name(), callee.guardKey)
		}
	}

	for _, fn := range ip.order {
		if !fn.isLocked() || fn.guardKey == "" {
			continue
		}
		for i := range fn.acquires {
			a := &fn.acquires[i]
			if a.key == fn.guardKey && a.again {
				rep(a.pos, nil,
					"%s %ss its own guard %s, which its caller already holds by the *Locked convention: self-deadlock",
					fn.name(), a.kind, fn.guardKey)
			}
		}
	}

	reportBlockingUnderHot(ip, rep)
}

// reportBlockingUnderHot reports blocking operations that can execute with
// a hot mutex held. Direct sites (hot provably in the local held set) are
// reported plainly; sites in functions only *reached* with the hot lock
// held (via the call graph) carry the witness call path. One report per
// site, whatever the number of paths.
func reportBlockingUnderHot(ip *interproc, rep ipReporter) {
	type reach struct {
		chain []string
		hot   string
	}
	reached := make(map[*fnNode]*reach)
	var queue []*fnNode
	for _, fn := range ip.order {
		for i := range fn.calls {
			ev := &fn.calls[i]
			if ev.isGo || ev.callee == nil {
				continue
			}
			hot := firstHot(ip, ev.held)
			if hot == "" {
				continue
			}
			callee, ok := ip.fns[ev.callee]
			if !ok {
				continue
			}
			if _, seen := reached[callee]; !seen {
				reached[callee] = &reach{chain: []string{fn.name(), callee.name()}, hot: hot}
				queue = append(queue, callee)
			}
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		r := reached[fn]
		for i := range fn.calls {
			ev := &fn.calls[i]
			if ev.isGo || ev.async || ev.callee == nil {
				continue
			}
			// If this function dropped the hot lock before the call, the
			// obligation does not flow further.
			if contains(ev.released, r.hot) {
				continue
			}
			callee, ok := ip.fns[ev.callee]
			if !ok {
				continue
			}
			if _, seen := reached[callee]; !seen {
				reached[callee] = &reach{chain: append(append([]string{}, r.chain...), callee.name()), hot: r.hot}
				queue = append(queue, callee)
			}
		}
	}

	reported := make(map[token.Pos]bool)
	emit := func(pos token.Pos, chain []string, what, hot, via string) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		if via == "" {
			rep(pos, chain, "blocking %s while hot mutex %s is held (everything queued behind %s stalls); move it off the lock or annotate //lint:allow lockedcall <why>",
				what, hot, hot)
		} else {
			rep(pos, chain, "blocking %s can run while hot mutex %s is held (call path: %s); move it off the lock or annotate //lint:allow lockedcall <why>",
				what, hot, via)
		}
	}
	for _, fn := range ip.order {
		for i := range fn.blocks {
			b := &fn.blocks[i]
			if hot := firstHot(ip, b.held); hot != "" {
				emit(b.pos, nil, b.what, hot, "")
			}
		}
		for i := range fn.calls {
			ev := &fn.calls[i]
			if ev.block == "" || ev.isGo {
				continue
			}
			if hot := firstHot(ip, ev.held); hot != "" {
				emit(ev.pos, nil, ev.block, hot, "")
			}
		}
		if r, ok := reached[fn]; ok {
			via := strings.Join(r.chain, " -> ")
			for i := range fn.blocks {
				b := &fn.blocks[i]
				if !b.async {
					emit(b.pos, r.chain, b.what, r.hot, via)
				}
			}
			for i := range fn.calls {
				ev := &fn.calls[i]
				if ev.block != "" && !ev.isGo && !ev.async && !contains(ev.released, r.hot) {
					emit(ev.pos, r.chain, ev.block, r.hot, via)
				}
			}
		}
	}
}

// firstHot returns the first held lock matching a hot pattern, "" if none.
func firstHot(ip *interproc, held []string) string {
	for _, h := range held {
		if ip.isHot(h) {
			return h
		}
	}
	return ""
}
