package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// runLockOrder derives the module's lock-acquisition graph — an edge A -> B
// means some path acquires B while holding A, following static calls
// through the call graph — and reports every cycle as a potential
// deadlock, plus any re-acquire of a lock already held (Go mutexes are
// non-reentrant, so that is a guaranteed self-deadlock, not merely a
// potential one). Re-acquires of a *Locked function's own entry guard are
// lockedcall's finding, not ours.
func runLockOrder(ip *interproc, rep ipReporter) {
	type edgeKey struct{ from, to string }
	type witness struct {
		pos  token.Pos
		desc string
	}
	edges := make(map[edgeKey]*witness)
	var order []edgeKey // first-seen order, deterministic
	addEdge := func(from, to string, pos token.Pos, desc string) {
		k := edgeKey{from, to}
		if _, ok := edges[k]; ok {
			return
		}
		edges[k] = &witness{pos: pos, desc: desc}
		order = append(order, k)
	}

	for _, fn := range ip.order {
		for i := range fn.acquires {
			a := &fn.acquires[i]
			if a.again {
				if fn.isLocked() && a.key == fn.guardKey {
					continue // lockedcall reports the own-guard self-lock
				}
				rep(a.pos, []string{a.key, a.key},
					"%s calls %s on %s while %s is already held: mutexes are non-reentrant, this self-deadlocks",
					fn.name(), a.kind, a.key, a.key)
				continue
			}
			for _, held := range a.held {
				if held != a.key {
					addEdge(held, a.key, a.pos,
						fmt.Sprintf("%s acquires %s while holding %s", fn.name(), a.key, held))
				}
			}
		}
		for i := range fn.calls {
			ev := &fn.calls[i]
			if ev.isGo || ev.callee == nil || len(ev.held) == 0 {
				continue
			}
			callee, ok := ip.fns[ev.callee]
			if !ok {
				continue
			}
			trans := ip.transAcquires(callee, make(map[*fnNode]bool))
			keys := make([]string, 0, len(trans))
			for k := range trans {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				w := trans[k]
				for _, held := range ev.held {
					if held == k {
						rep(ev.pos, append([]string{held}, w.path...),
							"%s calls %s while holding %s, and the callee re-acquires %s (via %s): mutexes are non-reentrant, this self-deadlocks",
							fn.name(), callee.name(), held, k, strings.Join(w.path, " -> "))
						continue
					}
					addEdge(held, k, ev.pos,
						fmt.Sprintf("%s calls %s while holding %s; the callee acquires %s (via %s)",
							fn.name(), callee.name(), held, k, strings.Join(w.path, " -> ")))
				}
			}
		}
	}

	// Cycle detection: report one diagnostic per strongly connected
	// component with more than one lock, spelled out as a concrete cycle
	// with the witness site of every edge.
	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	for _, k := range order {
		adj[k.from] = append(adj[k.from], k.to)
		nodes[k.from], nodes[k.to] = true, true
	}
	for _, succ := range adj {
		sort.Strings(succ)
	}
	sorted := make([]string, 0, len(nodes))
	for n := range nodes {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	comp := sccs(sorted, adj)
	var cycles [][]string
	for _, scc := range comp {
		if len(scc) < 2 {
			continue
		}
		if cyc := cycleThrough(scc, adj); cyc != nil {
			cycles = append(cycles, cyc)
		}
	}
	sort.Slice(cycles, func(i, j int) bool { return strings.Join(cycles[i], " ") < strings.Join(cycles[j], " ") })
	for _, cyc := range cycles {
		var parts []string
		for i := 0; i+1 < len(cyc); i++ {
			w := edges[edgeKey{cyc[i], cyc[i+1]}]
			parts = append(parts, fmt.Sprintf("%s (%s)", w.desc, ip.mod.Fset.Position(w.pos)))
		}
		first := edges[edgeKey{cyc[0], cyc[1]}]
		rep(first.pos, cyc, "potential deadlock: lock-order cycle %s; %s",
			strings.Join(cyc, " -> "), strings.Join(parts, "; "))
	}
}

// sccs computes strongly connected components (Tarjan) over the sorted
// node list, returning each component sorted.
func sccs(nodes []string, adj map[string][]string) [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var out [][]string
	next := 0
	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			out = append(out, comp)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}
	return out
}

// cycleThrough returns a concrete cycle within the component starting and
// ending at its smallest lock, found by BFS (so the shortest witness).
func cycleThrough(scc []string, adj map[string][]string) []string {
	in := make(map[string]bool, len(scc))
	for _, n := range scc {
		in[n] = true
	}
	start := scc[0]
	parent := map[string]string{start: ""}
	queue := []string{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if !in[w] {
				continue
			}
			if w == start && v != start {
				path := []string{start}
				var rev []string
				for cur := v; cur != ""; cur = parent[cur] {
					rev = append(rev, cur)
				}
				for i := len(rev) - 1; i >= 0; i-- {
					path = append(path, rev[i])
				}
				// rev ends at start, so path currently reads start ... v; close it.
				return append(path[1:], start)
			}
			if _, seen := parent[w]; !seen {
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	return nil
}
