package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestLoaderControlPlanePackages pins the three-pass loader against the
// post-control-plane tree: the packages the interprocedural rules lean on
// hardest (internal/service, internal/replog, internal/agent) must load as
// base units with full type information, and their in-package test files
// must come back as UnitInTest re-checks — the split that decides which
// files feed the call graph and which fall back to syntactic checking.
func TestLoaderControlPlanePackages(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	mod, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("Load(repo root): %v", err)
	}

	units := make(map[string]map[UnitKind]*Unit)
	for _, u := range mod.Units {
		if units[u.PkgPath] == nil {
			units[u.PkgPath] = make(map[UnitKind]*Unit)
		}
		if prev := units[u.PkgPath][u.Kind]; prev != nil {
			t.Errorf("%s: two units of kind %d", u.PkgPath, u.Kind)
		}
		units[u.PkgPath][u.Kind] = u
	}

	for _, pkg := range []string{
		"threesigma/internal/service",
		"threesigma/internal/replog",
		"threesigma/internal/agent",
	} {
		kinds := units[pkg]
		if kinds == nil {
			t.Errorf("%s: not loaded", pkg)
			continue
		}

		base := kinds[UnitBase]
		if base == nil {
			t.Errorf("%s: no base unit", pkg)
			continue
		}
		if base.Pkg == nil || base.Info == nil || len(base.Info.Defs) == 0 || len(base.Info.Selections) == 0 {
			t.Errorf("%s: base unit lacks type info (Pkg/Defs/Selections)", pkg)
		}
		for _, f := range base.Files {
			if f.Test {
				t.Errorf("%s: base unit contains test file %s", pkg, f.Path)
			}
			if !f.Report {
				t.Errorf("%s: base file %s not reportable", pkg, f.Path)
			}
		}

		// All three packages keep their tests in-package (package service,
		// package replog, package agent) — pass 2 territory.
		inTest := kinds[UnitInTest]
		if inTest == nil {
			t.Errorf("%s: no in-package test unit", pkg)
			continue
		}
		if inTest.Info == nil || len(inTest.Info.Defs) == 0 {
			t.Errorf("%s: in-test unit lacks type info", pkg)
		}
		sawTest := false
		for _, f := range inTest.Files {
			if !f.Test {
				if f.Report {
					t.Errorf("%s: non-test file %s reportable in the in-test unit (double reporting)", pkg, f.Path)
				}
				continue
			}
			sawTest = true
			if !f.Report {
				t.Errorf("%s: test file %s not reportable", pkg, f.Path)
			}
		}
		if !sawTest {
			t.Errorf("%s: in-test unit has no test files", pkg)
		}
	}

	// The service package's cross-file method sets must have resolved:
	// snapshot_test.go exercises snapshot/compaction symbols defined across
	// service.go, replicate.go and snapshot.go, so a Defs entry for a
	// Test* function there proves the re-check saw the whole package.
	svc := units["threesigma/internal/service"]
	if svc != nil && svc[UnitInTest] != nil {
		found := false
		for id, obj := range svc[UnitInTest].Info.Defs {
			if obj == nil {
				continue
			}
			if strings.HasPrefix(id.Name, "Test") &&
				strings.HasSuffix(mod.Fset.Position(id.Pos()).Filename, "snapshot_test.go") {
				found = true
				break
			}
		}
		if !found {
			t.Error("service in-test unit: no Test* Defs from snapshot_test.go; the re-check lost files")
		}
	}
}
