package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// runErrAudit flags discarded error returns from the durability call set:
// file writes and fsyncs (*os.File Sync/Write/WriteString/WriteAt and any
// niladic error-returning Sync, which covers interface seams like replog's
// logFile), the replicated-log append/compact/install surface, and the
// checkpoint writers. A dropped error on any of these paths means the
// process acks state it never made durable — on the replicated log that
// silently corrupts the hash chain a standby replays from. Discards are
// syntactic: a bare call statement, `_ =`, a blank in the error position
// of a multi-assign, and `defer`/`go` of such a call.
func runErrAudit(u *Unit, f *File, rep reporter) {
	report := func(call *ast.CallExpr, how string) {
		name, errIdx, ok := durabilityCall(u, call)
		if !ok || errIdx < 0 {
			return
		}
		rep(call, "error from %s is %s: a dropped durability error means state was acked but never made durable (handle it or annotate //lint:allow erraudit <why>)", name, how)
	}
	ast.Inspect(f.AST, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				report(call, "discarded")
			}
		case *ast.DeferStmt:
			report(s.Call, "discarded (deferred)")
		case *ast.GoStmt:
			report(s.Call, "discarded (goroutine)")
		case *ast.AssignStmt:
			if len(s.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			name, errIdx, ok := durabilityCall(u, call)
			if !ok || errIdx < 0 || errIdx >= len(s.Lhs) {
				return true
			}
			if id, ok := s.Lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
				rep(call, "error from %s is assigned to _: a dropped durability error means state was acked but never made durable (handle it or annotate //lint:allow erraudit <why>)", name)
			}
		}
		return true
	})
}

var checkpointWriterRe = regexp.MustCompile(`^(save|write|Save|Write).*Checkpoint`)

// durabilityCall classifies a call against the durability set and returns
// a display name plus the index of the error result (-1 when the callee
// returns no error — then there is nothing to drop).
func durabilityCall(u *Unit, call *ast.CallExpr) (string, int, bool) {
	obj := calleeObj(u, call)
	if obj == nil {
		return "", 0, false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return "", 0, false
	}
	errIdx := -1
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), types.Universe.Lookup("error").Type()) {
			errIdx = i
		}
	}
	name := obj.Name()
	recv := sig.Recv()
	if recv == nil {
		if checkpointWriterRe.MatchString(name) {
			return name, errIdx, true
		}
		return "", 0, false
	}
	named := namedOf(recv.Type())
	if named == nil || named.Obj().Pkg() == nil {
		// Interface receivers still carry a name via the method's package;
		// the only interface method in the set is the Sync seam below.
		if name == "Sync" && sig.Params().Len() == 0 && errIdx == 0 {
			return "Sync", errIdx, true
		}
		return "", 0, false
	}
	display := named.Obj().Name() + "." + name
	pkgPath := named.Obj().Pkg().Path()
	pkgName := named.Obj().Pkg().Name()
	if name == "Sync" && sig.Params().Len() == 0 && sig.Results().Len() == 1 && errIdx == 0 {
		return display, errIdx, true
	}
	if pkgPath == "os" && named.Obj().Name() == "File" {
		switch name {
		case "Write", "WriteString", "WriteAt":
			return display, errIdx, true
		}
	}
	if pkgName == "replog" {
		switch name {
		case "Append", "AppendBatch", "AppendRecord", "AppendRecords", "Compact", "InstallSnapshot":
			return display, errIdx, true
		}
	}
	if checkpointWriterRe.MatchString(name) {
		return display, errIdx, true
	}
	return "", 0, false
}

// calleeObj resolves the called function or method object, including
// interface methods (unlike calleeOf, which wants concrete targets).
func calleeObj(u *Unit, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := u.Info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if s, ok := u.Info.Selections[fun]; ok {
			if s.Kind() == types.MethodVal {
				f, _ := s.Obj().(*types.Func)
				return f
			}
			return nil
		}
		f, _ := u.Info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}
