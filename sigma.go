// Package threesigma is a from-scratch Go implementation of 3Sigma, the
// distribution-based cluster scheduler of Park et al. (EuroSys 2018),
// together with every substrate the paper depends on: the 3σPredict runtime
// distribution predictor, a pure-Go MILP solver, a discrete-event cluster
// simulator, trace-derived workload generators for the paper's three
// environments, and the comparison baselines (PointPerfEst, PointRealEst,
// Prio).
//
// The package is a thin facade over the internal packages; it exposes
// everything a downstream user needs to schedule a workload with 3σSched,
// predict runtime distributions from job history, or reproduce the paper's
// evaluation. See the examples/ directory for runnable programs and
// DESIGN.md for the architecture.
//
// # Quick start
//
//	w := threesigma.GenerateWorkload(threesigma.WorkloadConfig{Seed: 1})
//	res, err := threesigma.Simulate(threesigma.SystemThreeSigma, w, threesigma.SimConfig{})
//	if err != nil { ... }
//	fmt.Println(res.Report)
package threesigma

import (
	"fmt"
	"io"

	"threesigma/internal/baselines"
	"threesigma/internal/core"
	"threesigma/internal/dist"
	"threesigma/internal/faults"
	"threesigma/internal/job"
	"threesigma/internal/metrics"
	"threesigma/internal/predictor"
	"threesigma/internal/shard"
	"threesigma/internal/simulator"
	"threesigma/internal/trace"
	"threesigma/internal/workload"
)

// Core model types re-exported for library users.
type (
	// Job is a gang-scheduled cluster job request.
	Job = job.Job
	// JobID identifies a job within one workload.
	JobID = job.ID
	// Class distinguishes SLO (deadline) jobs from best-effort jobs.
	Class = job.Class
	// Distribution is an estimated job runtime distribution.
	Distribution = dist.Distribution
	// Cluster describes the machine partitions of a simulated cluster.
	Cluster = simulator.Cluster
	// Report carries the success metrics of one run (§5 of the paper).
	Report = metrics.Report
	// Outcome records one job's fate in a simulation.
	Outcome = simulator.Outcome
	// SchedulerStats carries 3σSched-side latency and model-size counters.
	SchedulerStats = core.Stats
	// Workload is a generated experiment input (pre-training history plus
	// timed job submissions).
	Workload = workload.Workload
	// WorkloadConfig parameterizes workload generation (§5 defaults).
	WorkloadConfig = workload.Config
	// PredictorConfig tunes 3σPredict.
	PredictorConfig = predictor.Config
	// SchedulerConfig tunes 3σSched (plan-ahead window, solver budget,
	// utility weights, mis-estimate handling).
	SchedulerConfig = core.Config
	// Estimate is 3σPredict's answer for one job: a runtime distribution,
	// the best point estimate, and the winning expert.
	Estimate = predictor.Estimate
	// FaultConfig parameterizes deterministic fault injection (node MTBF /
	// MTTR, correlated group failures, job crashes, stragglers, retry
	// budget); see internal/faults.
	FaultConfig = faults.Config
)

// ParseFaultSpec parses a fault scenario spec — a preset name ("light",
// "heavy") or a comma-separated k=v list such as
// "seed=7,mtbf=1800,mttr=300,group=0.2:4,crash=0.05,straggler=0.1:2,retries=3".
func ParseFaultSpec(spec string) (FaultConfig, error) { return faults.ParseSpec(spec) }

// Job classes.
const (
	// SLO marks deadline (production) jobs.
	SLO = job.SLO
	// BestEffort marks latency-sensitive deadline-free jobs.
	BestEffort = job.BestEffort
)

// NewCluster builds a cluster of equal partitions totalling nodes.
func NewCluster(nodes, partitions int) Cluster { return simulator.NewCluster(nodes, partitions) }

// Predictor is a 3σPredict instance (§4.1): feature-based history sketches
// scored by NMAE, returning empirical runtime distributions.
type Predictor struct{ p *predictor.Predictor }

// NewPredictor returns a predictor; the zero PredictorConfig selects the
// paper's defaults (80 histogram bins, α = 0.6, recent window 20).
func NewPredictor(cfg PredictorConfig) *Predictor {
	return &Predictor{p: predictor.New(cfg)}
}

// Estimate returns the runtime distribution and point estimate for a job.
func (p *Predictor) Estimate(j *Job) Estimate { return p.p.Estimate(j) }

// Observe records a completed job's runtime into the history.
func (p *Predictor) Observe(j *Job, runtime float64) { p.p.Observe(j, runtime) }

// Train replays a slice of (job, runtime) history (e.g. a workload's
// pre-training records) into the predictor.
func (p *Predictor) Train(w *Workload) {
	for _, r := range w.Train {
		p.p.Observe(r.Job(), r.Runtime)
	}
}

// Save serializes the predictor's history sketches (the paper's runtime
// history database) for reuse across processes.
func (p *Predictor) Save(w io.Writer) error { return p.p.Save(w) }

// Load restores history saved by Save into a predictor constructed with
// the same feature configuration.
func (p *Predictor) Load(r io.Reader) error { return p.p.Load(r) }

// System selects one of the scheduler configurations compared in the paper
// (Table 1 plus the Fig. 8 ablations).
type System string

// Available systems.
const (
	SystemThreeSigma   System = "3Sigma"
	SystemPointPerfEst System = "PointPerfEst"
	SystemPointRealEst System = "PointRealEst"
	SystemPrio         System = "Prio"
	SystemNoDist       System = "3SigmaNoDist"
	SystemNoOE         System = "3SigmaNoOE"
	SystemNoAdapt      System = "3SigmaNoAdapt"
)

// Scheduler is the simulator-facing scheduling interface; 3σSched and the
// baselines implement it.
type Scheduler = simulator.Scheduler

// NewScheduler builds the named system. The predictor may be nil for
// systems that do not use one (PointPerfEst, Prio); it is required for
// 3Sigma, PointRealEst and the ablations.
func NewScheduler(sys System, p *Predictor, cfg SchedulerConfig) (Scheduler, error) {
	var pp *predictor.Predictor
	if p != nil {
		pp = p.p
	}
	switch sys {
	case SystemThreeSigma, SystemPointRealEst, SystemNoDist, SystemNoOE, SystemNoAdapt:
		if pp == nil {
			return nil, fmt.Errorf("threesigma: system %s requires a predictor", sys)
		}
	}
	switch sys {
	case SystemThreeSigma:
		return baselines.ThreeSigma(pp, cfg), nil
	case SystemPointPerfEst:
		return baselines.PointPerfEst(cfg), nil
	case SystemPointRealEst:
		return baselines.PointRealEst(pp, cfg), nil
	case SystemNoDist:
		return baselines.NoDist(pp, cfg), nil
	case SystemNoOE:
		return baselines.NoOE(pp, cfg), nil
	case SystemNoAdapt:
		return baselines.NoAdapt(pp, cfg), nil
	case SystemPrio:
		return baselines.NewPrio(), nil
	}
	return nil, fmt.Errorf("threesigma: unknown system %q", sys)
}

// GenerateWorkload builds a trace-derived synthetic workload; the zero
// config selects the paper's E2E defaults (Google environment, 256 nodes,
// 5 hours, load 1.4, 50/50 SLO/BE, slack {20,40,60,80}%).
func GenerateWorkload(cfg WorkloadConfig) *Workload { return workload.Generate(cfg) }

// TraceRecord is one completed job of a raw trace (see the trace CSV tools).
type TraceRecord = trace.Record

// ReplayConfig controls converting a raw trace into a workload (§5's
// segment-replay recipe for the HedgeFund and Mustang experiments).
type ReplayConfig = workload.ReplayConfig

// WorkloadFromTrace converts raw trace records into an experiment workload:
// a time segment becomes the submissions (with SLO/BE classes, deadlines
// and preferences assigned), everything earlier becomes pre-training
// history.
func WorkloadFromTrace(recs []TraceRecord, cfg ReplayConfig) *Workload {
	return workload.FromTrace(recs, cfg)
}

// SimConfig controls a Simulate run.
type SimConfig struct {
	// CycleInterval is the scheduling period in simulated seconds
	// (default 10).
	CycleInterval float64
	// DrainWindow is the extra simulated time after the last submission
	// before the run is cut off (default 2400).
	DrainWindow float64
	// RealCluster emulates the paper's RC256 configuration by adding
	// execution jitter and placement delay.
	RealCluster bool
	// VirtualTime runs the scheduler on the simulator's virtual clock:
	// solver deadlines never expire mid-solve and measured latencies pin
	// to zero, making budgeted solves deterministic regardless of host
	// load. Off by default so the reported cycle/solve latencies remain
	// wall-clock measurements (Fig. 12).
	VirtualTime bool
	// Scheduler overrides the system's default scheduler configuration.
	Scheduler SchedulerConfig
	// Shards > 1 partitions the cluster into that many scheduling domains,
	// each running its own 3σSched cycle concurrently under the cross-shard
	// coordinator (DESIGN.md §13). 0 or 1 runs the monolithic single-solve
	// scheduler — bitwise identical to builds without the shard subsystem.
	// Only the core-scheduler systems support sharding (not Prio).
	Shards int
	Seed   int64
	// Faults, when non-nil, injects a deterministic failure schedule (node
	// crash/recover, job crash-with-retry, stragglers) into the run. Nil
	// leaves every output bit-identical to a fault-free build.
	Faults *FaultConfig
}

// SimResult bundles the metric report with raw outcomes and scheduler stats.
type SimResult struct {
	Report   Report
	Outcomes []*Outcome
	Stats    SchedulerStats // zero value for Prio
	// Digest is a hash of the run's observable outcome (job fates + fault
	// accounting, wall-clock noise excluded); identical scheduling behavior
	// yields identical digests, which is what the CI determinism gate for
	// fault injection compares.
	Digest string
	// ShardStats carries each scheduling domain's scheduler counters when
	// the run was sharded (nil otherwise); Stats then holds the combined
	// cross-shard view.
	ShardStats []SchedulerStats
	// ShardDigests are the per-domain outcome digests of a sharded run,
	// indexed by shard (nil when unsharded).
	ShardDigests []string
}

// Simulate runs the workload under the named system on the workload's
// cluster and reports the paper's success metrics. Systems needing a
// predictor get a fresh one pre-trained on the workload's history.
func Simulate(sys System, w *Workload, cfg SimConfig) (*SimResult, error) {
	var p *Predictor
	switch sys {
	case SystemThreeSigma, SystemPointRealEst, SystemNoDist, SystemNoOE, SystemNoAdapt:
		p = NewPredictor(PredictorConfig{})
		p.Train(w)
	}
	if cfg.CycleInterval <= 0 {
		cfg.CycleInterval = 10
	}
	if cfg.DrainWindow <= 0 {
		cfg.DrainWindow = 2400
	}
	scfg := cfg.Scheduler
	if scfg.CycleInterval == 0 {
		scfg.CycleInterval = cfg.CycleInterval
	}
	sched, err := NewScheduler(sys, p, scfg)
	if err != nil {
		return nil, err
	}
	var coord *shard.Coordinator
	if cfg.Shards > 1 {
		cs, ok := sched.(*core.Scheduler)
		if !ok {
			return nil, fmt.Errorf("threesigma: system %s does not support sharding", sys)
		}
		coord, err = shard.NewCoordinator(cs, w.Cluster, cfg.Shards)
		if err != nil {
			return nil, err
		}
		sched = coord
	}
	opts := simulator.Options{
		Cluster:       w.Cluster,
		CycleInterval: cfg.CycleInterval,
		DrainWindow:   cfg.DrainWindow,
		Seed:          cfg.Seed,
		VirtualTime:   cfg.VirtualTime,
		Faults:        cfg.Faults,
	}
	if cfg.RealCluster {
		opts.RuntimeJitter = 0.04
		opts.PlacementDelay = 1.5
	}
	sim, err := simulator.New(sched, w.Jobs, opts)
	if err != nil {
		return nil, err
	}
	res := sim.Run()
	out := &SimResult{
		Report:   metrics.FromResult(string(sys), res, w.Cluster),
		Outcomes: res.Outcomes,
		Digest:   metrics.OutcomeDigest(res),
	}
	if coord != nil {
		out.Stats = coord.Stats()
		out.ShardStats = coord.ShardStats()
		out.ShardDigests = metrics.ShardOutcomeDigests(res, coord.NumShards(), coord.DigestShard)
	} else if cs, ok := sched.(*core.Scheduler); ok {
		out.Stats = cs.Stats()
	}
	return out, nil
}

// SimulateScheduler runs an arbitrary scheduler (e.g. one built with
// NewCustomScheduler) on explicit jobs over the given cluster.
func SimulateScheduler(sched Scheduler, jobs []*Job, cluster Cluster, cfg SimConfig) (*SimResult, error) {
	if cfg.CycleInterval <= 0 {
		cfg.CycleInterval = 10
	}
	if cfg.DrainWindow <= 0 {
		cfg.DrainWindow = 2400
	}
	opts := simulator.Options{
		Cluster:       cluster,
		CycleInterval: cfg.CycleInterval,
		DrainWindow:   cfg.DrainWindow,
		Seed:          cfg.Seed,
		VirtualTime:   cfg.VirtualTime,
		Faults:        cfg.Faults,
	}
	if cfg.RealCluster {
		opts.RuntimeJitter = 0.04
		opts.PlacementDelay = 1.5
	}
	sim, err := simulator.New(sched, jobs, opts)
	if err != nil {
		return nil, err
	}
	res := sim.Run()
	out := &SimResult{
		Report:   metrics.FromResult("custom", res, cluster),
		Outcomes: res.Outcomes,
		Digest:   metrics.OutcomeDigest(res),
	}
	if cs, ok := sched.(*core.Scheduler); ok {
		out.Stats = cs.Stats()
	}
	return out, nil
}

// FormatReports renders reports as the comparison table used throughout the
// paper's figures.
func FormatReports(rows []Report) string { return metrics.Table(rows) }
