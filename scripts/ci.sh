#!/usr/bin/env sh
# ci.sh — the repository's verification gate: vet, build, the full test
# suite under the race detector, and an end-to-end smoke of the online
# service (serverd + loadgen, including a SIGTERM warm restart).
# Run from anywhere; operates on the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== service e2e smoke =="
./scripts/smoke_service.sh

echo "CI OK"
