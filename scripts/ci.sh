#!/usr/bin/env sh
# ci.sh — the repository's verification gate: vet, build, and the full test
# suite under the race detector. Run from anywhere; operates on the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "CI OK"
