#!/usr/bin/env sh
# ci.sh — the repository's verification gate: vet, the 3sigma-lint static
# analyzer, build, the full test suite under the race detector, the
# differential solver oracle, a fuzz
# smoke pass over the histogram/distribution property targets, a
# fault-injection determinism gate (two identical seeded chaos runs must
# produce bit-identical outcome digests), an incremental re-solve digest
# gate (patched and force-rebuilt runs must agree bitwise, with and without
# fault injection), a sharded-domain digest gate (-shards 1 vs -shards 8 vs
# single-worker solves must agree bitwise on an equivalence-partitioned
# workload), an end-to-end smoke of the
# online service (serverd + loadgen, including a SIGTERM warm restart and
# a /readyz drain check), and the cluster durability gate (3-replica
# serverd group + 4 agentd node groups under majority-quorum acks and log
# compaction: leader kill -9 failover, a follower dead from the start, and
# a cold restart from a compacted log — every arm's outcome digest must be
# byte-identical to an uninterrupted single-replica run).
# Run from anywhere; operates on the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== 3sigma-lint =="
# The repo's own determinism & concurrency analyzer (DESIGN.md §10): map
# iteration in deterministic packages, wall-clock reads outside the clock
# boundary, unseeded randomness, exact float comparison, copied locks and
# unguarded annotated fields — plus the interprocedural rules: lock-order
# cycles (potential deadlocks), the *Locked caller-holds-guard convention,
# blocking work under the hot Service.mu, and discarded durability errors.
# Exits non-zero on any unsuppressed finding. Stale //lint:allow comments
# are findings too, so the gate fails when a suppression outlives its bug.
go run ./cmd/3sigma-lint ./...

echo "== lint suppression budget =="
# The number of //lint:allow directives in the tree is capped by a
# committed baseline: new suppressions need a deliberate budget bump in
# the same change, and deleting dead ones ratchets the budget down.
ALLOWS=$(go run ./cmd/3sigma-lint -allows)
BUDGET=$(cat scripts/lint_allow_budget)
if [ "$ALLOWS" -gt "$BUDGET" ]; then
    echo "FAIL: $ALLOWS //lint:allow directives exceed the committed budget of $BUDGET"
    echo "      (justify the new suppression, then raise scripts/lint_allow_budget in the same change)"
    exit 1
fi
if [ "$ALLOWS" -lt "$BUDGET" ]; then
    echo "note: $ALLOWS allows < budget $BUDGET; consider ratcheting scripts/lint_allow_budget down"
fi
echo "suppressions: $ALLOWS / $BUDGET"

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== differential solver oracle =="
# Pinned seed: 200 random scheduling-shaped MILPs, each solved at workers
# {1,2,8} and compared bitwise against the single-worker dense-LP reference
# (DESIGN.md §9).
THREESIGMA_ORACLE_MODELS=200 THREESIGMA_ORACLE_SEED=1 \
    go test -count=1 -run '^TestDifferentialOracle$' ./internal/check

echo "== fuzz smoke =="
# A few seconds per target: regression corpus under testdata/fuzz plus a
# short randomized pass over the invariant verifiers.
go test -fuzz '^FuzzHistogramInvariants$' -fuzztime 5s -run '^$' ./internal/histogram
go test -fuzz '^FuzzFromState$' -fuzztime 5s -run '^$' ./internal/histogram
go test -fuzz '^FuzzConditional$' -fuzztime 5s -run '^$' ./internal/dist

echo "== fault determinism gate =="
# Same seed, same fault schedule => bit-identical outcomes, byte-for-byte.
# -virtualtime pins the solver budgets so wall-clock noise cannot leak into
# scheduling decisions.
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
go build -o "$WORK/3sigma-sim" ./cmd/3sigma-sim
SIM_ARGS="-env google -nodes 48 -partitions 4 -hours 0.05 -load 1.2 -seed 5 \
    -virtualtime -faults light -digest"
"$WORK/3sigma-sim" $SIM_ARGS | grep '^outcome digest:' >"$WORK/digest1"
"$WORK/3sigma-sim" $SIM_ARGS | grep '^outcome digest:' >"$WORK/digest2"
[ -s "$WORK/digest1" ] || { echo "FAIL: no digest line emitted"; exit 1; }
if ! cmp -s "$WORK/digest1" "$WORK/digest2"; then
    echo "FAIL: fault-injected runs with one seed diverged"
    diff "$WORK/digest1" "$WORK/digest2" || true
    exit 1
fi
echo "digests identical across runs:"
cat "$WORK/digest1"

echo "== incremental re-solve digest gate =="
# The incremental path (model patching + warm basis + solution reuse,
# DESIGN.md §12) is contractually outcome-neutral: forcing a full rebuild
# every cycle must produce the bit-identical outcome digest, fault-free and
# under fault injection alike.
for FAULTS in "" "-faults light"; do
    INC_ARGS="-env google -nodes 48 -partitions 4 -hours 0.05 -load 1.2 -seed 5 \
        -virtualtime $FAULTS -digest"
    "$WORK/3sigma-sim" $INC_ARGS | grep '^outcome digest:' >"$WORK/inc"
    "$WORK/3sigma-sim" $INC_ARGS -forcerebuild | grep '^outcome digest:' >"$WORK/reb"
    [ -s "$WORK/inc" ] || { echo "FAIL: no digest line emitted"; exit 1; }
    if ! cmp -s "$WORK/inc" "$WORK/reb"; then
        echo "FAIL: incremental vs forced-rebuild outcomes diverged (faults='$FAULTS')"
        diff "$WORK/inc" "$WORK/reb" || true
        exit 1
    fi
    echo "incremental == rebuild (faults='${FAULTS:-none}'):"
    cat "$WORK/inc"
done

echo "== sharded-domain digest gate =="
# Sharded scheduling domains (DESIGN.md §13) are contractually
# outcome-neutral on an equivalence-partitioned workload (every SLO job
# prefers exactly one domain, prohibitive slowdown elsewhere): the combined
# outcome digest must be bitwise-identical across -shards 1 / -shards 8 and
# across solver worker counts. go test -race ./internal/shard is covered by
# the suite-wide race run above; the cross-process digest comparison here is
# what pins the merge order.
SHARD_ARGS="-env google -nodes 256 -partitions 32 -hours 0.1 -load 0.35 -seed 5 \
    -virtualtime -domains 8 -sloshare 1 -nonpref 1000 -digest"
"$WORK/3sigma-sim" $SHARD_ARGS -shards 1 | grep '^outcome digest:' >"$WORK/sh1"
"$WORK/3sigma-sim" $SHARD_ARGS -shards 8 | grep '^outcome digest:' >"$WORK/sh8"
"$WORK/3sigma-sim" $SHARD_ARGS -shards 8 -workers 1 | grep '^outcome digest:' >"$WORK/sh8w1"
[ -s "$WORK/sh1" ] || { echo "FAIL: no digest line emitted"; exit 1; }
if ! cmp -s "$WORK/sh1" "$WORK/sh8"; then
    echo "FAIL: -shards 1 vs -shards 8 outcomes diverged"
    diff "$WORK/sh1" "$WORK/sh8" || true
    exit 1
fi
if ! cmp -s "$WORK/sh8" "$WORK/sh8w1"; then
    echo "FAIL: -shards 8 outcomes changed with solver worker count"
    diff "$WORK/sh8" "$WORK/sh8w1" || true
    exit 1
fi
echo "sharded == monolithic, worker-count invariant:"
cat "$WORK/sh1"

echo "== service e2e smoke =="
./scripts/smoke_service.sh

echo "== cluster durability digest gate =="
# Distributed control plane (DESIGN.md §14): agents own execution, replicas
# mirror the decision log under majority-quorum acks with periodic
# snapshot-based compaction. Four arms — uninterrupted reference, leader
# kill -9 failover, a follower dead from the start (2 of 3 still acks,
# zero lag timeouts), and a SIGTERM + cold boot from a compacted log —
# must all land on byte-identical outcome digests and predictor SHAs.
./scripts/cluster_smoke.sh

echo "CI OK"
