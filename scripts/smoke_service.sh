#!/usr/bin/env sh
# smoke_service.sh — end-to-end smoke of the online service: build serverd +
# loadgen, replay ~50 jobs, assert every job reaches a terminal phase and the
# solver did real work, then SIGTERM the daemon and verify a restart from the
# same checkpoint serves bit-identical predictor estimates.
set -eu

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
PORT=$((20000 + $$ % 20000))
ADDR="http://127.0.0.1:$PORT"
CKPT="$WORK/predictor.ckpt"
SERVERD="$WORK/3sigma-serverd"
LOADGEN="$WORK/3sigma-loadgen"
PROBE="user3,job_17,4,1"
PID=""

cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$SERVERD" ./cmd/3sigma-serverd
go build -o "$LOADGEN" ./cmd/3sigma-loadgen

start_daemon() {
    "$SERVERD" -addr "127.0.0.1:$PORT" -nodes 64 -partitions 4 \
        -cycle 10 -timescale 60 -checkpoint "$CKPT" -checkpoint-every 2s \
        -drain-grace 2s \
        >>"$WORK/serverd.log" 2>&1 &
    PID=$!
}

readyz() {
    "$LOADGEN" -addr "$ADDR" -readyz
}

solver_nodes() {
    "$LOADGEN" -addr "$ADDR" -metrics |
        sed -n 's/.*"solver_nodes":\([0-9][0-9]*\).*/\1/p'
}

echo "-- batch 1: replay against $ADDR"
start_daemon
"$LOADGEN" -addr "$ADDR" -wait 10s -nodes 64 -partitions 4 \
    -hours 0.125 -jobs-per-hour 400 -load 0.7 -speedup 60 -seed 3 -timeout 150s

SOLVED=$(solver_nodes)
[ "${SOLVED:-0}" -gt 0 ] || { echo "FAIL: solver_nodes=$SOLVED after batch 1"; exit 1; }
P1=$("$LOADGEN" -addr "$ADDR" -predict "$PROBE")

echo "-- warm restart: SIGTERM, restart from $CKPT"
kill -TERM "$PID"
wait "$PID" || { echo "FAIL: serverd did not drain cleanly"; exit 1; }
PID=""
[ -s "$CKPT" ] || { echo "FAIL: no checkpoint written"; exit 1; }

start_daemon
P2=$("$LOADGEN" -addr "$ADDR" -wait 10s -predict "$PROBE")
[ "$P1" = "$P2" ] || { echo "FAIL: prediction changed across restart"; echo " before: $P1"; echo " after:  $P2"; exit 1; }
echo "predictor state survived restart: $P2"

echo "-- batch 2: replay against restarted daemon"
"$LOADGEN" -addr "$ADDR" -nodes 64 -partitions 4 \
    -hours 0.125 -jobs-per-hour 400 -load 0.7 -speedup 60 -seed 4 -timeout 150s

SOLVED=$(solver_nodes)
[ "${SOLVED:-0}" -gt 0 ] || { echo "FAIL: solver_nodes=$SOLVED after batch 2"; exit 1; }

echo "-- readiness drain: SIGTERM flips /readyz to 503 while /healthz stays 200"
READY=$(readyz)
[ "$READY" = "200" ] || { echo "FAIL: readyz=$READY while serving, want 200"; exit 1; }
kill -TERM "$PID"
# The daemon holds the listener open for -drain-grace after withdrawing
# readiness; poll until the flip is visible.
DRAIN=""
i=0
while [ $i -lt 15 ]; do
    DRAIN=$(readyz)
    [ "$DRAIN" = "503" ] && break
    i=$((i + 1))
    sleep 0.1
done
[ "$DRAIN" = "503" ] || { echo "FAIL: readyz=$DRAIN after SIGTERM, want 503"; exit 1; }
echo "readyz flipped 200 -> 503 on SIGTERM"
wait "$PID" || { echo "FAIL: serverd did not drain cleanly"; exit 1; }
PID=""

echo "service smoke OK"
