#!/usr/bin/env sh
# cluster_smoke.sh — the distributed-control-plane acceptance gate
# (DESIGN.md §14), four arms sharing one workload and one reference digest:
#
#   1. reference: 1 replica + 4 agentd node groups, uninterrupted.
#   2. failover: a 3-replica group (majority quorum, log compaction on) has
#      its leader kill -9ed mid-run; a warm standby takes over.
#   3. follower-kill: the same group shape with one replica dead from the
#      start — the leader must keep accepting (2 of 3 is a quorum) with no
#      replication-lag timeouts.
#   4. compacted-restart: a single replica compacts its log, is SIGTERMed,
#      and a cold process boots from the snapshot-headed log.
#
# Every arm's outcome digest and predictor SHA must be byte-identical to
# the reference. Any wall-clock leakage into scheduling, any lost or
# double-applied input, and any divergence in the replay, quorum, or
# snapshot paths breaks the comparison.
set -eu

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
BASE=$((21000 + $$ % 20000))
SERVERD="$WORK/3sigma-serverd"
LOADGEN="$WORK/3sigma-loadgen"
AGENTD="$WORK/3sigma-agentd"
PIDS=""

# Workload + cluster shape shared by both runs. The submit stamps are
# offset 120 virtual seconds so the whole burst lands before the first
# stamped cycle fires (2s wall at -timescale 60).
LG_ARGS="-nodes 64 -partitions 4 -hours 0.05 -jobs-per-hour 400 -load 0.7 \
    -seed 3 -burst -offset 120 -timeout 150s"
SD_ARGS="-nodes 64 -partitions 4 -cycle 10 -timescale 60 -det -lease 500ms"

cleanup() {
    for P in $PIDS; do kill -9 "$P" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$SERVERD" ./cmd/3sigma-serverd
go build -o "$LOADGEN" ./cmd/3sigma-loadgen
go build -o "$AGENTD" ./cmd/3sigma-agentd

# start_agents <port-base>: 4 agentds, one 16-node partition each.
start_agents() {
    AGENTS=""
    for P in 0 1 2 3; do
        "$AGENTD" -addr "127.0.0.1:$(($1 + P))" -own "$P=16" \
            >>"$WORK/agentd.log" 2>&1 &
        PIDS="$PIDS $!"
        AGENTS="$AGENTS${AGENTS:+,}http://127.0.0.1:$(($1 + P))=$P"
    done
}

# digest <addr> <outfile>: extract the outcome digest + predictor SHA.
digest() {
    "$LOADGEN" -addr "$1" -metrics |
        sed -n 's/.*"outcome_digest":"\([^"]*\)".*"predictor_sha":"\([^"]*\)".*/\1 \2/p' >"$2"
    [ -s "$2" ] || { echo "FAIL: no digest in $1/v1/metrics"; exit 1; }
}

echo "-- reference run: 1 replica + 4 agents, uninterrupted"
start_agents $((BASE + 10))
REF="http://127.0.0.1:$BASE"
"$SERVERD" -addr "127.0.0.1:$BASE" $SD_ARGS \
    -replog "$WORK/ref.log" -agents "$AGENTS" \
    >>"$WORK/ref-serverd.log" 2>&1 &
REF_PID=$!
PIDS="$PIDS $REF_PID"
"$LOADGEN" -addr "$REF" -wait 10s $LG_ARGS
digest "$REF" "$WORK/ref.digest"
kill -TERM "$REF_PID" 2>/dev/null || true
for P in $PIDS; do kill -TERM "$P" 2>/dev/null || true; done
wait || true
PIDS=""
echo "reference digest: $(cat "$WORK/ref.digest")"

echo "-- failover run: 3 replicas + 4 agents, quorum acks + compaction, leader kill -9 mid-run"
start_agents $((BASE + 20))
PEERS=""
for R in 0 1 2; do
    PEERS="$PEERS${PEERS:+,}$R=http://127.0.0.1:$((BASE + 30 + R))"
done
R0_PID=""
for R in 0 1 2; do
    "$SERVERD" -addr "127.0.0.1:$((BASE + 30 + R))" $SD_ARGS \
        -replog "$WORK/r$R.log" -replica "$R" -peers "$PEERS" -agents "$AGENTS" \
        -compact-every 12 \
        >>"$WORK/r$R-serverd.log" 2>&1 &
    [ "$R" = 0 ] && R0_PID=$!
    PIDS="$PIDS $!"
done
GROUP="http://127.0.0.1:$((BASE + 30)),http://127.0.0.1:$((BASE + 31)),http://127.0.0.1:$((BASE + 32))"

# Wait for a leader (replica 0, the lowest live ID, wins the first election).
i=0
while [ "$("$LOADGEN" -addr "http://127.0.0.1:$((BASE + 30))" -readyz)" != "200" ]; do
    i=$((i + 1))
    [ $i -lt 100 ] || { echo "FAIL: no leader elected"; exit 1; }
    sleep 0.1
done

"$LOADGEN" -addr "$GROUP" -clients 2 $LG_ARGS >"$WORK/loadgen.out" 2>&1 &
LG_PID=$!

# Kill -9 the leader mid-run: after the burst is in the replicated log
# (loadgen prints its "submitted" line once every stamp is acknowledged)
# but while stamped admissions and agent reconciliation are still being
# scheduled — the stamps stretch 180 virtual seconds (3s wall) past this
# point. Killing earlier would chop the input feed itself, which tests
# client retry, not deterministic failover.
i=0
until grep -q "submitted" "$WORK/loadgen.out" 2>/dev/null; do
    i=$((i + 1))
    [ $i -lt 300 ] || { echo "FAIL: burst never finished submitting"; cat "$WORK/loadgen.out"; exit 1; }
    sleep 0.1
done
sleep 1
kill -9 "$R0_PID"
echo "leader (replica 0) killed with SIGKILL"

wait "$LG_PID" || { echo "FAIL: loadgen did not survive the failover"; cat "$WORK/loadgen.out"; exit 1; }
cat "$WORK/loadgen.out"

# Find the new leader among the survivors and compare digests.
NEW=""
for R in 1 2; do
    A="http://127.0.0.1:$((BASE + 30 + R))"
    [ "$("$LOADGEN" -addr "$A" -readyz)" = "200" ] && NEW="$A"
done
[ -n "$NEW" ] || { echo "FAIL: no standby took over"; exit 1; }
digest "$NEW" "$WORK/failover.digest"
echo "failover digest:  $(cat "$WORK/failover.digest")"

if ! cmp -s "$WORK/ref.digest" "$WORK/failover.digest"; then
    echo "FAIL: failover run diverged from the uninterrupted reference"
    diff "$WORK/ref.digest" "$WORK/failover.digest" || true
    exit 1
fi
echo "failover == uninterrupted, byte-for-byte"
for P in $PIDS; do kill -TERM "$P" 2>/dev/null || true; done
wait || true
PIDS=""

echo "-- follower-kill run: 3-replica group with replica 2 dead from the start"
# Majority quorum is 2: the leader plus the one live follower must keep
# acknowledging every submit without ever waiting out SubmitSyncTimeout on
# the corpse.
start_agents $((BASE + 40))
PEERS=""
for R in 0 1 2; do
    PEERS="$PEERS${PEERS:+,}$R=http://127.0.0.1:$((BASE + 50 + R))"
done
for R in 0 1; do
    "$SERVERD" -addr "127.0.0.1:$((BASE + 50 + R))" $SD_ARGS \
        -replog "$WORK/fk$R.log" -replica "$R" -peers "$PEERS" -agents "$AGENTS" \
        -compact-every 12 \
        >>"$WORK/fk$R-serverd.log" 2>&1 &
    PIDS="$PIDS $!"
done
FK="http://127.0.0.1:$((BASE + 50))"
i=0
while [ "$("$LOADGEN" -addr "$FK" -readyz)" != "200" ]; do
    i=$((i + 1))
    [ $i -lt 100 ] || { echo "FAIL: no leader elected with 2 of 3 replicas"; exit 1; }
    sleep 0.1
done
"$LOADGEN" -addr "$FK" $LG_ARGS
digest "$FK" "$WORK/fkill.digest"
echo "follower-kill digest: $(cat "$WORK/fkill.digest")"
if ! cmp -s "$WORK/ref.digest" "$WORK/fkill.digest"; then
    echo "FAIL: follower-kill run diverged from the uninterrupted reference"
    diff "$WORK/ref.digest" "$WORK/fkill.digest" || true
    exit 1
fi
"$LOADGEN" -addr "$FK" -metrics | grep -q '"repl_lag_timeouts":0' ||
    { echo "FAIL: dead follower caused replication-lag timeouts"; exit 1; }
echo "follower-kill == uninterrupted, no lag timeouts"
for P in $PIDS; do kill -TERM "$P" 2>/dev/null || true; done
wait || true
PIDS=""

echo "-- compacted-restart run: snapshot + truncate, SIGTERM, cold boot from the compacted log"
start_agents $((BASE + 60))
CR="http://127.0.0.1:$((BASE + 70))"
"$SERVERD" -addr "127.0.0.1:$((BASE + 70))" $SD_ARGS \
    -replog "$WORK/compact.log" -compact-every 12 -agents "$AGENTS" \
    >>"$WORK/cr-serverd.log" 2>&1 &
CR_PID=$!
PIDS="$PIDS $!"
"$LOADGEN" -addr "$CR" -wait 10s $LG_ARGS
digest "$CR" "$WORK/compact-pre.digest"
cmp -s "$WORK/ref.digest" "$WORK/compact-pre.digest" ||
    { echo "FAIL: compaction changed the live digest"; exit 1; }
kill -TERM "$CR_PID" 2>/dev/null || true
wait "$CR_PID" 2>/dev/null || true
# The log on disk must actually be compacted: the "3SRL" header magic only
# ever fronts a truncated, snapshot-based log.
[ "$(head -c 4 "$WORK/compact.log")" = "3SRL" ] ||
    { echo "FAIL: log never compacted (no 3SRL header)"; exit 1; }
"$SERVERD" -addr "127.0.0.1:$((BASE + 70))" $SD_ARGS \
    -replog "$WORK/compact.log" -compact-every 12 -agents "$AGENTS" \
    >>"$WORK/cr-serverd.log" 2>&1 &
PIDS="$PIDS $!"
i=0
while [ "$("$LOADGEN" -addr "$CR" -readyz)" != "200" ]; do
    i=$((i + 1))
    [ $i -lt 100 ] || { echo "FAIL: restart from compacted log never became ready"; exit 1; }
    sleep 0.1
done
digest "$CR" "$WORK/compact-post.digest"
echo "compacted-restart digest: $(cat "$WORK/compact-post.digest")"
if ! cmp -s "$WORK/ref.digest" "$WORK/compact-post.digest"; then
    echo "FAIL: cold boot from the compacted log diverged from the reference"
    diff "$WORK/ref.digest" "$WORK/compact-post.digest" || true
    exit 1
fi
echo "compacted restart == uninterrupted, byte-for-byte"
echo "cluster smoke OK"
