// Heterogeneous resources: 3σSched decides between starting a job now on
// non-preferred machines (1.5× slower) and deferring it until its preferred
// machines free up — the space-time trade-off of §4.3.1.
//
// The cluster has two machine types (partitions). An SLO job prefers
// partition 0, which is busy for the first 5 minutes; running anywhere else
// would take 1.5× longer. With a tight deadline the only winning plan is to
// wait for the preferred nodes, and the plan-ahead MILP finds it.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"time"

	"threesigma"
)

func main() {
	cfg := threesigma.SchedulerConfig{
		Policy:        threesigma.DefaultPolicy(),
		Slots:         8,
		SlotDur:       150,
		CycleInterval: 10,
		SolverBudget:  200 * time.Millisecond,
	}
	cfg.Policy.Preemption = false // force the deferral decision
	sched := threesigma.NewCustomScheduler(threesigma.PerfectEstimator(), cfg)

	jobs := []*threesigma.Job{
		// Two best-effort hogs pin both partitions at t=0: partition 0
		// frees at 300 s, partition 1 at 600 s.
		{ID: 1, Name: "hog-a", Class: threesigma.BestEffort, Submit: 0, Tasks: 2,
			Runtime: 300, Preferred: []int{0}, NonPrefFactor: 1},
		{ID: 2, Name: "hog-b", Class: threesigma.BestEffort, Submit: 0, Tasks: 2,
			Runtime: 600, Preferred: []int{1}, NonPrefFactor: 1},
		// The SLO job prefers partition 0 and needs 440 s there (660 s
		// anywhere else). Deadline 770 s: only "wait for partition 0 at
		// t=300, run 440 s, finish at 740 s" meets it.
		{ID: 3, Name: "analytics", Class: threesigma.SLO, Submit: 10, Deadline: 770,
			Tasks: 2, Runtime: 440, Preferred: []int{0}, NonPrefFactor: 1.5},
	}
	res, err := threesigma.SimulateScheduler(sched, jobs,
		threesigma.NewCluster(4, 2), threesigma.SimConfig{CycleInterval: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("two machine types; the SLO job runs 1.5x slower off its preferred type")
	fmt.Println()
	for _, o := range res.Outcomes {
		place := "non-preferred"
		if o.OnPreferred {
			place = "preferred"
		}
		verdict := ""
		if o.Job.Class == threesigma.SLO {
			if o.MissedDeadline() {
				verdict = "  -> MISSED deadline"
			} else {
				verdict = fmt.Sprintf("  -> met deadline %.0fs with %.0fs to spare",
					o.Job.Deadline, o.Job.Deadline-o.CompletionTime)
			}
		}
		fmt.Printf("%-10s start=%4.0fs finish=%4.0fs on %s nodes%s\n",
			o.Job.Name, o.FirstStart, o.CompletionTime, place, verdict)
	}
	fmt.Println()
	fmt.Println("the scheduler deferred the SLO job ~300s rather than starting it")
	fmt.Println("immediately on slower machines — the deferral the paper's Fig. 5 plans.")
}
