// Deadline mix: the paper's §2.3 / Fig. 5 worked example, run through the
// real scheduler. Two jobs arrive at a one-node cluster: an SLO job with a
// 15-minute deadline and a latency-sensitive best-effort job. Both have a
// mean runtime of 5 minutes — but the *distribution* decides the right
// order:
//
//   - Scenario 1: runtimes ~ U(0,10) min. Running BE first risks a 12.5%
//     deadline miss, so 3σSched runs the SLO job first.
//   - Scenario 2: runtimes ~ U(2.5,7.5) min. Even worst-case (7.5+7.5 = 15)
//     meets the deadline, so 3σSched runs the BE job first to cut its
//     latency.
//
// A point-estimate scheduler sees "5 minutes" in both scenarios and cannot
// tell them apart.
//
//	go run ./examples/deadline_mix
package main

import (
	"fmt"
	"log"
	"time"

	"threesigma"
)

func run(name string, lo, hi float64) {
	est := threesigma.EstimatorFunc(func(*threesigma.Job) threesigma.Distribution {
		return threesigma.UniformDist(lo, hi)
	}, nil)
	cfg := threesigma.SchedulerConfig{
		Policy:        threesigma.DefaultPolicy(),
		Slots:         8,
		SlotDur:       150, // 2.5-minute slots, as in Fig. 5
		CycleInterval: 10,
		SolverBudget:  200 * time.Millisecond,
	}
	sched := threesigma.NewCustomScheduler(est, cfg)

	slo := &threesigma.Job{
		ID: 1, Name: "slo", Class: threesigma.SLO,
		Submit: 0, Deadline: 900, Tasks: 1, Runtime: 300,
	}
	be := &threesigma.Job{
		ID: 2, Name: "be", Class: threesigma.BestEffort,
		Submit: 0, Tasks: 1, Runtime: 300,
	}
	res, err := threesigma.SimulateScheduler(sched, []*threesigma.Job{slo, be},
		threesigma.NewCluster(1, 1), threesigma.SimConfig{CycleInterval: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (runtimes ~ U(%.1f,%.1f) min):\n", name, lo/60, hi/60)
	for _, o := range res.Outcomes {
		status := "met deadline"
		if o.Job.Class == threesigma.BestEffort {
			status = fmt.Sprintf("latency %.1f min", (o.CompletionTime-o.Job.Submit)/60)
		} else if o.MissedDeadline() {
			status = "MISSED deadline"
		}
		fmt.Printf("  %-4s started at %5.1f min, finished at %5.1f min  (%s)\n",
			o.Job.Name, o.FirstStart/60, o.CompletionTime/60, status)
	}
	fmt.Println()
}

func main() {
	fmt.Println("3Sigma §2.3 worked example: one node, SLO (15 min deadline) + BE job.")
	fmt.Println()
	run("Scenario 1: wide distribution → SLO job must go first", 0, 600)
	run("Scenario 2: narrow distribution → BE job can safely go first", 150, 450)
}
