// Quickstart: generate a Google-derived workload, schedule it with 3Sigma,
// and compare against the Table 1 baselines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"threesigma"
)

func main() {
	// A small cluster and a short window keep this example under a minute;
	// scale the numbers up for paper-scale runs (256 nodes, 5 hours).
	w := threesigma.GenerateWorkload(threesigma.WorkloadConfig{
		Cluster:       threesigma.NewCluster(64, 8),
		DurationHours: 1,
		Load:          1.4,
		Seed:          42,
	})
	fmt.Printf("generated %s: %d jobs at offered load %.2f\n\n", w.Name, len(w.Jobs), w.OfferedLoad)

	var rows []threesigma.Report
	for _, sys := range []threesigma.System{
		threesigma.SystemThreeSigma,
		threesigma.SystemPointPerfEst,
		threesigma.SystemPointRealEst,
		threesigma.SystemPrio,
	} {
		res, err := threesigma.Simulate(sys, w, threesigma.SimConfig{Seed: 42, CycleInterval: 15})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, res.Report)
	}
	fmt.Print(threesigma.FormatReports(rows))
	fmt.Println("\n3Sigma schedules with full runtime distributions from 3σPredict;")
	fmt.Println("PointPerfEst is the hypothetical oracle, PointRealEst the point-estimate")
	fmt.Println("state of the art, and Prio a runtime-unaware priority scheduler.")
}
