// Predictor demo: train 3σPredict on a synthetic cluster trace and inspect
// what it learns — the winning expert per job, point estimates, and full
// runtime distributions (quantiles), plus the aggregate estimate-error
// profile of §2.1 / Fig. 2d.
//
//	go run ./examples/predictor_demo
package main

import (
	"fmt"

	"threesigma"
	"threesigma/internal/workload"
)

func main() {
	// Generate history from the HedgeFund environment model (the paper's
	// hardest-to-predict workload) and train the predictor on it.
	env := workload.HedgeFund()
	recs := workload.GenerateTrace(env, 8000, 7)
	p := threesigma.NewPredictor(threesigma.PredictorConfig{})

	// Replay the trace: estimate before observing, scoring accuracy online.
	within2, scored := 0, 0
	for _, r := range recs {
		j := r.Job()
		if e := p.Estimate(j); !e.Novel {
			scored++
			if e.Point <= 2*r.Runtime && e.Point >= r.Runtime/2 {
				within2++
			}
		}
		p.Observe(j, r.Runtime)
	}
	fmt.Printf("trained on %d jobs from the %s model\n", len(recs), env.Name)
	fmt.Printf("online accuracy: %.1f%% of %d estimates within 2x of the actual runtime\n\n",
		100*float64(within2)/float64(scored), scored)

	// Ask for distributions for a few recurring jobs.
	fmt.Println("per-job estimates (distribution quantiles in seconds):")
	seen := map[string]bool{}
	shown := 0
	for _, r := range recs {
		if shown >= 5 || seen[r.Name] {
			continue
		}
		seen[r.Name] = true
		shown++
		e := p.Estimate(r.Job())
		d := e.Dist
		fmt.Printf("  %-18s expert=%-22s n=%4d  point=%7.0f  p10=%7.0f p50=%7.0f p90=%7.0f max=%8.0f\n",
			r.Name, e.Expert, e.Samples, e.Point,
			d.Quantile(0.1), d.Quantile(0.5), d.Quantile(0.9), d.Max())
	}

	// A brand-new (user, program) pair has no specific history; the
	// catch-all "all" feature still offers the cluster-wide distribution,
	// so the predictor degrades gracefully instead of guessing blindly.
	novel := &threesigma.Job{User: "nobody", Name: "never-seen", Tasks: 3}
	e := p.Estimate(novel)
	fmt.Printf("\nunseen job: served by the catch-all expert %q (novel=%v)\n", e.Expert, e.Novel)

	// The same distribution drives 3σSched's decisions: probability of
	// finishing within a deadline window.
	if shown > 0 {
		for _, r := range recs[:200] {
			e := p.Estimate(r.Job())
			if e.Novel {
				continue
			}
			window := e.Point * 1.5
			fmt.Printf("\nexample scheduling query for %s:\n", r.Name)
			fmt.Printf("  P(runtime <= %.0fs) = %.2f   (Eq. 1 feeds on exactly this CDF)\n",
				window, e.Dist.CDF(window))
			break
		}
	}
}
