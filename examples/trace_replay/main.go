// Trace replay: the paper's §5 recipe for the HedgeFund and Mustang
// experiments — take a raw trace, pre-train 3σPredict on everything before
// a chosen segment, replay the segment as a live workload, and persist the
// predictor's learned history (the "runtime history database") for the
// next run.
//
//	go run ./examples/trace_replay
package main

import (
	"bytes"
	"fmt"
	"log"

	"threesigma"
	"threesigma/internal/workload"
)

func main() {
	// Stand-in for a real trace: 4,000 jobs from the Mustang-like model
	// (use cmd/3sigma-tracegen to materialize one as CSV).
	recs := workload.GenerateTrace(workload.Mustang(), 4000, 11)
	span := recs[len(recs)-1].Submit

	// Replay the last quarter of the trace; the first three quarters
	// become predictor history.
	w := threesigma.WorkloadFromTrace(recs, threesigma.ReplayConfig{
		Name:         "mustang-segment",
		Cluster:      threesigma.NewCluster(1024, 8),
		SegmentStart: span * 0.75,
		Seed:         11,
	})
	fmt.Printf("replaying %d jobs (offered load %.1f) after pre-training on %d history records\n",
		len(w.Jobs), w.OfferedLoad, len(w.Train))

	res, err := threesigma.Simulate(threesigma.SystemThreeSigma, w, threesigma.SimConfig{
		Seed: 11, CycleInterval: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Report)

	// Persist the predictor's history database and restore it elsewhere.
	p := threesigma.NewPredictor(threesigma.PredictorConfig{})
	p.Train(w)
	for _, o := range res.Outcomes {
		if o.Completed {
			p.Observe(o.Job, o.Job.Runtime)
		}
	}
	var db bytes.Buffer
	if err := p.Save(&db); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved history database: %d bytes for %d jobs of history\n", db.Len(), len(w.Train)+len(w.Jobs))

	restored := threesigma.NewPredictor(threesigma.PredictorConfig{})
	if err := restored.Load(&db); err != nil {
		log.Fatal(err)
	}
	e := restored.Estimate(w.Jobs[0])
	fmt.Printf("restored predictor estimates job %d at %.0fs (expert %s, %d samples)\n",
		w.Jobs[0].ID, e.Point, e.Expert, e.Samples)
}
